//! Differential tests: the tiered matcher (literal / prefilter + lazy
//! DFA) must agree **byte-for-byte** with the Pike VM on `is_match`
//! and `find` for every pattern it accepts.
//!
//! The Pike VM is the semantic reference: it is the oldest, simplest
//! engine in the crate and the capture/fallback tier, so any
//! divergence is a bug in a faster tier. Patterns and haystacks are
//! generated from seeds (the proptest shim samples deterministically),
//! plus a fixed regression list covering the classic trouble spots:
//! empty matches, anchors, and word boundaries.

use proptest::prelude::*;

use pash_regex::compile::compile;
use pash_regex::parser::parse;
use pash_regex::pikevm::PikeVm;
use pash_regex::{Regex, Syntax};

/// The Pike VM's answer, straight from the reference engine with no
/// tier selection in the way.
fn pike_find(pat: &str, hay: &[u8], start: usize) -> Option<(usize, usize)> {
    let prog = compile(&parse(pat, Syntax::Ere).expect("parse")).expect("compile");
    let vm = PikeVm::new(&prog);
    if start > hay.len() {
        return None;
    }
    vm.find_at(hay, start).and_then(|s| match (s[0], s[1]) {
        (Some(a), Some(b)) => Some((a, b)),
        _ => None,
    })
}

/// Asserts tier parity for one pattern over a batch of haystacks,
/// reusing one matcher so DFA caches stay warm across calls (the
/// production usage pattern).
fn assert_parity(pat: &str, hays: &[Vec<u8>]) {
    let re = match Regex::new(pat, Syntax::Ere) {
        Ok(re) => re,
        // Generated patterns may be rejected (e.g. oversized
        // intervals); rejection is not a parity question.
        Err(_) => return,
    };
    let mut m = re.matcher();
    for hay in hays {
        let want = pike_find(pat, hay, 0);
        let got = m.find(hay);
        assert_eq!(
            got,
            want,
            "find mismatch: pattern `{pat}` on {:?}",
            String::from_utf8_lossy(hay)
        );
        assert_eq!(
            m.is_match(hay),
            want.is_some(),
            "is_match mismatch: pattern `{pat}` on {:?}",
            String::from_utf8_lossy(hay)
        );
        // Offset searches exercise the `^`-context and prefilter
        // advance paths.
        for start in [1usize, hay.len() / 2] {
            if start <= hay.len() {
                assert_eq!(
                    m.find_at(hay, start),
                    pike_find(pat, hay, start),
                    "find_at({start}) mismatch: pattern `{pat}` on {:?}",
                    String::from_utf8_lossy(hay)
                );
            }
        }
    }
}

/// SplitMix64, for deterministic structure generation from a seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits a random ERE over a small alphabet. Depth-bounded so the
/// patterns stay readable in failure output.
fn gen_pattern(g: &mut Gen, depth: u32) -> String {
    let atom = |g: &mut Gen| -> String {
        match g.below(10) {
            0 => "a".to_string(),
            1 => "b".to_string(),
            2 => "c".to_string(),
            3 => "x".to_string(),
            4 => ".".to_string(),
            5 => "[ab]".to_string(),
            6 => "[^a]".to_string(),
            7 => "[a-c]".to_string(),
            8 => "yz".to_string(),
            _ => "q".to_string(),
        }
    };
    if depth == 0 {
        return atom(g);
    }
    match g.below(12) {
        0..=3 => atom(g),
        4 => format!("{}{}", gen_pattern(g, depth - 1), gen_pattern(g, depth - 1)),
        5 => format!(
            "{}|{}",
            gen_pattern(g, depth - 1),
            gen_pattern(g, depth - 1)
        ),
        6 => format!("({})", gen_pattern(g, depth - 1)),
        7 => format!("({})*", gen_pattern(g, depth - 1)),
        8 => format!("({})+", gen_pattern(g, depth - 1)),
        9 => format!("({})?", gen_pattern(g, depth - 1)),
        10 => format!(
            "({}){{{},{}}}",
            gen_pattern(g, depth - 1),
            g.below(3),
            g.below(3) + 2
        ),
        _ => format!("{}{}", atom(g), atom(g)),
    }
}

/// Emits a haystack biased toward the pattern alphabet so matches are
/// actually exercised (uniform bytes almost never match).
fn gen_hay(g: &mut Gen, max_len: usize) -> Vec<u8> {
    let len = g.below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| {
            let choices = b"aabbccxyzq .\n";
            choices[g.below(choices.len() as u64) as usize]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn prop_random_patterns_agree_with_pikevm(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let pat = gen_pattern(&mut g, 3);
        let hays: Vec<Vec<u8>> = (0..8).map(|_| gen_hay(&mut g, 40)).collect();
        assert_parity(&pat, &hays);
    }

    #[test]
    fn prop_anchored_variants_agree(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let body = gen_pattern(&mut g, 2);
        let hays: Vec<Vec<u8>> = (0..6).map(|_| gen_hay(&mut g, 24)).collect();
        assert_parity(&format!("^{body}"), &hays);
        assert_parity(&format!("{body}$"), &hays);
        assert_parity(&format!("^{body}$"), &hays);
    }

    #[test]
    fn prop_literal_bearing_patterns_agree(seed in 0u64..u64::MAX) {
        // Force a required literal so the prefilter + advance path is
        // the one under test.
        let mut g = Gen(seed);
        let body = gen_pattern(&mut g, 2);
        let hays: Vec<Vec<u8>> = (0..6).map(|_| gen_hay(&mut g, 32)).collect();
        assert_parity(&format!("yz{body}"), &hays);
        assert_parity(&format!("{body}yz"), &hays);
    }

    #[test]
    fn prop_find_iter_spans_agree(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let pat = gen_pattern(&mut g, 2);
        let re = match Regex::new(&pat, Syntax::Ere) {
            Ok(re) => re,
            Err(_) => return,
        };
        let hay = gen_hay(&mut g, 40);
        // Reference: iterate with the Pike VM using the same
        // empty-match advance rule as Matches.
        let mut want = Vec::new();
        let mut at = 0usize;
        while let Some((s, e)) = pike_find(&pat, &hay, at) {
            want.push((s, e));
            at = if e == s { e + 1 } else { e };
            if at > hay.len() {
                break;
            }
        }
        let got: Vec<(usize, usize)> = re.find_iter(&hay).collect();
        prop_assert_eq!(got, want, "pattern `{}`", pat);
    }
}

#[test]
fn regression_empty_matches() {
    let hays: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"a".to_vec(),
        b"ab".to_vec(),
        b"xxx".to_vec(),
        b"\n".to_vec(),
    ];
    for pat in ["x*", "a*", "(a*)*", "(a|)", "()*", "a?", "(a?)?b?"] {
        assert_parity(pat, &hays);
    }
}

#[test]
fn regression_anchors() {
    let hays: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"a".to_vec(),
        b"ab".to_vec(),
        b"ba".to_vec(),
        b"aba".to_vec(),
        b"xaby".to_vec(),
    ];
    for pat in [
        "^", "$", "^$", "^a", "a$", "^a$", "^ab$", "a$|b", "(a$|b)a", "^(a|b)*$", "b^a", "a$b",
        "^^a", "a$$",
    ] {
        assert_parity(pat, &hays);
    }
}

#[test]
fn regression_word_boundaries() {
    let hays: Vec<Vec<u8>> = vec![
        b"cat".to_vec(),
        b"a cat sat".to_vec(),
        b"concatenate".to_vec(),
        b"cat!".to_vec(),
        b"!cat".to_vec(),
        b"".to_vec(),
        b"c a t".to_vec(),
    ];
    for pat in [
        r"\bcat\b",
        r"\bcat",
        r"cat\b",
        r"\b",
        r"\B",
        r"\Bcat",
        r"a\b.",
        r"\b(cat|sat)\b",
    ] {
        assert_parity(pat, &hays);
    }
}

#[test]
fn regression_leftmost_priority() {
    let hays: Vec<Vec<u8>> = vec![
        b"ab".to_vec(),
        b"ba".to_vec(),
        b"aab".to_vec(),
        b"aaxb".to_vec(),
        b"abab".to_vec(),
    ];
    for pat in [
        "ab|a",
        "a|ab",
        "a|ba",
        "a*b|a",
        "(a|ab)(b|)",
        "a+|b+",
        "(ab)+|(ba)+",
    ] {
        assert_parity(pat, &hays);
    }
}

#[test]
fn regression_adversarial_patterns_stay_linear() {
    // Classic backtracking killers: the tiered engine (and the Pike
    // VM) must answer these in linear time — a blow-up here hangs the
    // test run, which is the assertion.
    let aaa = vec![b'a'; 2048];
    for pat in ["(a|a)*b", "(a*)*b", "(a+)+b", "(a|aa)+b"] {
        assert_parity(pat, &[aaa.clone()]);
    }
}

#[test]
fn regression_case_insensitive_parity() {
    let re = Regex::with_flags("abc[0-9]", Syntax::Ere, true).expect("compile");
    let mut m = re.matcher();
    assert_eq!(m.find(b"xxABC5yy"), Some((2, 6)));
    assert_eq!(m.find(b"xxAbC5yy"), Some((2, 6)));
    assert!(!m.is_match(b"xxABCyy"));
}

#[test]
fn regression_bre_patterns() {
    for (pat, hay, want) in [
        // GNU BRE `\+` is the one-or-more extension.
        (r"a\+", &b"aaa"[..], Some((0, 3))),
        (r"\(ab\)*c", b"xababc", Some((1, 6))),
        ("a*", b"baa", Some((0, 0))),
        (r"x\|y", b"zy", Some((1, 2))),
    ] {
        let re = Regex::new(pat, Syntax::Bre).expect("compile");
        assert_eq!(re.find(hay), want, "BRE `{pat}`");
    }
}
