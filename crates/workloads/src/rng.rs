//! A tiny seeded PRNG for hermetic workload generation.
//!
//! The generators must be byte-reproducible forever: correctness
//! tests compare parallel against sequential output over these
//! corpora, and benchmark numbers are only comparable across runs if
//! the inputs never drift. An external `rand` dependency ties the
//! byte stream to that crate's version; this SplitMix64 implementation
//! (Steele, Lea & Flood 2014 — the `java.util.SplittableRandom`
//! finalizer) is ~20 lines we own outright.

/// SplitMix64: a 64-bit state advanced by a Weyl sequence and mixed
/// through two xor-multiply rounds. Passes BigCrush; more than enough
/// for corpus synthesis.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal
    /// streams on every platform and toolchain.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[lo, hi)`; `lo < hi` required.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.gen_u64() % (hi - lo)
    }

    /// Uniform integer in `[lo, hi]`; `lo <= hi` required.
    pub fn gen_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        self.gen_range(lo, hi + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_stream() {
        // Reference values from the published SplitMix64 algorithm
        // with seed 1234567: if these ever change, every generated
        // corpus changes — fail loudly.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.gen_u64(), 6457827717110365317);
        assert_eq!(rng.gen_u64(), 3203168211198807973);
        assert_eq!(rng.gen_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let x = rng.gen_range(5, 12);
            assert!((5..12).contains(&x));
            let y = rng.gen_range_inclusive(5, 12);
            assert!((5..=12).contains(&y));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(1);
            (0..8).map(|_| r.gen_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(2);
            (0..8).map(|_| r.gen_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::new(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.12)).count();
        assert!((900..1500).contains(&hits), "got {hits} hits of ~1200");
    }
}
