//! The Unix-for-NLP script family (the "Unix for poets" exercises the
//! PaSh evaluation runs over Project Gutenberg books), expressed over
//! this repository's command set.
//!
//! These pipelines are short `tr`/`sort`/`uniq`/`grep` compositions
//! whose stages have wildly different costs: tokenization is
//! stateless and scales with width, the `sort | uniq -c` tails are
//! merge-bound, and the `grep` filters shrink the stream early. That
//! mix is exactly where a per-region width/split choice diverges from
//! any single global setting, which is why the adaptive-parallelism
//! benchmarks use this family as their corpus.

use pash_coreutils::fs::MemFs;

/// One NLP pipeline. Scripts read `in.txt` (and `in2.txt` for the
/// two-book comparisons) and write `out.txt`.
#[derive(Debug, Clone)]
pub struct NlpScript {
    /// Benchmark name, following the original family's naming.
    pub name: &'static str,
    /// The script.
    pub script: &'static str,
    /// Why this pipeline is interesting for per-stage decisions.
    pub note: &'static str,
    /// Whether the script also reads `in2.txt`.
    pub two_inputs: bool,
}

/// The ported family. Pipelines needing unsupported flags (`sort -f`,
/// `uniq -d`, `awk` bodies) are re-expressed with equivalent
/// registered commands rather than dropped.
pub fn scripts() -> Vec<NlpScript> {
    let s = |name, script, note, two_inputs| NlpScript {
        name,
        script,
        note,
        two_inputs,
    };
    vec![
        s(
            "count_words",
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c > out.txt",
            "the canonical word-frequency pipeline; stateless front, merge-bound tail",
            false,
        ),
        s(
            "merge_upper",
            "cat in.txt | tr a-z A-Z | tr -cs A-Z '\\n' | sort | uniq -c > out.txt",
            "case folding before tokenization",
            false,
        ),
        s(
            "count_vowel_seq",
            "cat in.txt | tr A-Z a-z | tr -cs aeiou '\\n' | grep -v '^$' | sort | uniq -c > out.txt",
            "vowel-sequence frequencies; the tokenizer emits many empty lines",
            false,
        ),
        s(
            "sort_words",
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort -u > out.txt",
            "vocabulary extraction (folded, so `sort -f` is not needed)",
            false,
        ),
        s(
            "sort_words_by_rhyming",
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | rev | sort -u | rev > out.txt",
            "rhyme order via rev|sort|rev",
            false,
        ),
        s(
            "4letter_words",
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | grep '^....$' | sort -u > out.txt",
            "length filter shrinks the stream before the sort",
            false,
        ),
        s(
            "words_no_vowels",
            "cat in.txt | tr A-Z a-z | tr -cs a-z '\\n' | grep -v '^$' | grep -v '[aeiou]' | sort -u > out.txt",
            "double filter leaves a tiny tail; wide widths are wasted",
            false,
        ),
        s(
            "1syllable_words",
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | grep '^[^aeiou]*[aeiou][^aeiou]*$' | sort -u > out.txt",
            "single-vowel-group words via anchored classes",
            false,
        ),
        s(
            "uppercase_by_type",
            "cat in.txt | tr -cs A-Za-z '\\n' | grep '[A-Z]' | sort -u > out.txt",
            "capitalized vocabulary (by type, not token)",
            false,
        ),
        s(
            "bigrams",
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | bigrams-aux | sort | uniq -c > out.txt",
            "adjacent word pairs; the aux stage is stateful across the stream",
            false,
        ),
        s(
            "top_vowel_seq",
            "cat in.txt | tr A-Z a-z | tr -cs aeiou '\\n' | grep -v '^$' | sort | uniq -c | sort -rn | head -n 5 > out.txt",
            "ranked vowel sequences (the `> 1K` threshold becomes a top-5)",
            false,
        ),
        s(
            "compare_books",
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort -u > v1.txt\n\
             cat in2.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort -u > v2.txt\n\
             comm -12 v1.txt v2.txt > out.txt",
            "shared vocabulary of two books (the exodus/genesis comparison)",
            true,
        ),
    ]
}

/// Seeds `fs` for the family: `in.txt` of roughly `bytes` text, plus
/// the second book when any script wants it.
pub fn setup_fs(bytes: usize, fs: &MemFs) {
    fs.add("in.txt", crate::text_corpus(17, bytes));
    fs.add("in2.txt", crate::text_corpus(19, bytes));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_write_out_and_read_in() {
        let family = scripts();
        assert!(family.len() >= 10, "family should stay substantial");
        for s in &family {
            assert!(s.script.contains("in.txt"), "{} reads in.txt", s.name);
            assert!(s.script.contains("> out.txt"), "{} writes out.txt", s.name);
            assert_eq!(s.two_inputs, s.script.contains("in2.txt"), "{}", s.name);
        }
    }

    #[test]
    fn setup_seeds_both_books() {
        let fs = MemFs::new();
        setup_fs(4096, &fs);
        assert!(fs.read("in.txt").expect("in.txt").len() >= 4096);
        assert_ne!(
            fs.read("in.txt").expect("in.txt"),
            fs.read("in2.txt").expect("in2.txt")
        );
    }
}
