//! Deterministic synthetic workload generators for the PaSh benchmark
//! suite.
//!
//! The paper evaluates on downloaded corpora (Project-Gutenberg-style
//! text, NOAA weather archives, Wikipedia dumps); this crate generates
//! statistically similar inputs locally (see DESIGN.md §2 for the
//! substitution table). All generators are seeded and reproducible.

pub mod nlp;
pub mod rng;

use pash_coreutils::fs::MemFs;

use crate::rng::SplitMix64;

/// A small English-like vocabulary used by the text generators.
const VOCAB: &[&str] = &[
    "the",
    "of",
    "and",
    "a",
    "to",
    "in",
    "is",
    "you",
    "that",
    "it",
    "he",
    "was",
    "for",
    "on",
    "are",
    "as",
    "with",
    "his",
    "they",
    "time",
    "river",
    "mountain",
    "system",
    "shell",
    "pipe",
    "stream",
    "parallel",
    "data",
    "running",
    "cats",
    "tables",
    "weather",
    "maximum",
    "minimum",
    "temperature",
    "analysis",
    "compiler",
    "graph",
    "node",
    "edge",
    "merge",
    "split",
    "eager",
    "annotation",
    "command",
    "script",
    "process",
    "kernel",
    "buffer",
    "signal",
];

/// Harmonic normalizer for [`zipf_word`]: Σ 1/(k+1) over VOCAB ranks.
const VOCAB_HARMONIC: f64 = {
    let mut h = 0.0;
    let mut k = 0;
    while k < VOCAB.len() {
        h += 1.0 / (k + 1) as f64;
        k += 1;
    }
    h
};

/// Draws a Zipf-ish ranked word from the vocabulary.
fn zipf_word(rng: &mut SplitMix64) -> &'static str {
    // P(rank k) ∝ 1/(k+1): sample by scanning a harmonic prefix.
    let mut x = rng.gen_f64() * VOCAB_HARMONIC;
    for (k, w) in VOCAB.iter().enumerate() {
        x -= 1.0 / (k + 1) as f64;
        if x <= 0.0 {
            return w;
        }
    }
    VOCAB[0]
}

/// Generates roughly `bytes` of text: lines of 4–10 words with
/// punctuation and mixed case.
pub fn text_corpus(seed: u64, bytes: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(bytes + 64);
    while out.len() < bytes {
        let words = rng.gen_range_inclusive(4, 10);
        for i in 0..words {
            let w = zipf_word(&mut rng);
            if i > 0 {
                out.push(b' ');
            }
            if rng.gen_bool(0.12) {
                // Capitalize.
                out.extend(w.as_bytes().iter().enumerate().map(|(j, &b)| {
                    if j == 0 {
                        b.to_ascii_uppercase()
                    } else {
                        b
                    }
                }));
            } else {
                out.extend_from_slice(w.as_bytes());
            }
            if rng.gen_bool(0.08) {
                out.push(b',');
            }
        }
        if rng.gen_bool(0.5) {
            out.push(b'.');
        }
        out.push(b'\n');
    }
    out
}

/// A sorted dictionary of the vocabulary (for the Spell benchmark).
pub fn dictionary() -> Vec<u8> {
    let mut words: Vec<&str> = VOCAB.to_vec();
    words.sort_unstable();
    words.dedup();
    let mut out = Vec::new();
    for w in words {
        out.extend_from_slice(w.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Parameters of the NOAA-style weather mirror (§2.1, Fig. 1).
#[derive(Debug, Clone)]
pub struct NoaaSpec {
    /// Years covered (e.g. 2015..=2020 in the paper).
    pub years: std::ops::RangeInclusive<u32>,
    /// Station files per year.
    pub files_per_year: usize,
    /// Records per station file.
    pub records_per_file: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoaaSpec {
    fn default() -> Self {
        NoaaSpec {
            years: 2015..=2020,
            files_per_year: 8,
            records_per_file: 500,
            seed: 42,
        }
    }
}

/// Generates the NOAA mirror into `fs` under `base`:
/// `base/<year>/index.txt` lists station files ls-style (9th field is
/// the file name, mirroring Fig. 1's `cut -d" " -f9`), and each
/// station file is RLE-"compressed" fixed-width records whose columns
/// 89–92 hold the temperature (tenths of °C; `9999` = missing).
///
/// Returns the list of `(year, max_valid_temperature_field)` ground
/// truths, where the field is the 4-digit column value.
pub fn generate_noaa(fs: &MemFs, base: &str, spec: &NoaaSpec) -> Vec<(u32, u32)> {
    let mut rng = SplitMix64::new(spec.seed);
    let mut truths = Vec::new();
    for year in spec.years.clone() {
        let mut index = String::new();
        let mut year_max: u32 = 0;
        for f in 0..spec.files_per_year {
            let fname = format!("{year:04}-{f:03}.rec");
            // An ls -l style line: 8 metadata fields then the name.
            index.push_str(&format!(
                "-rw-r--r-- 1 noaa noaa {} Jan {} {} {}\n",
                1000 + f,
                1 + (f % 28),
                year,
                fname
            ));
            let mut lines: Vec<Vec<u8>> = Vec::with_capacity(spec.records_per_file);
            for r in 0..spec.records_per_file {
                // Fixed-width record: 88 filler columns, then a
                // 4-digit temperature field at columns 89–92.
                let field: u32 = if rng.gen_bool(0.02) {
                    9990 + rng.gen_range(0, 10) as u32 // Bogus `999x` marker.
                } else {
                    rng.gen_range(0, 450) as u32
                };
                let is_bogus = field.to_string().contains("999");
                if !is_bogus {
                    year_max = year_max.max(field);
                }
                let mut line =
                    format!("{:08}{:>10}{:>70}", r, format!("st{f:04}"), year).into_bytes();
                line.truncate(88);
                while line.len() < 88 {
                    line.push(b' ');
                }
                line.extend_from_slice(format!("{field:04}").as_bytes());
                lines.push(line);
            }
            let compressed = pash_coreutils::cmd::custom::rle_encode(&lines);
            fs.add(format!("{base}/{year}/{fname}"), compressed);
        }
        fs.add(format!("{base}/{year}/index.txt"), index.into_bytes());
        truths.push((year, year_max));
    }
    truths
}

/// Parameters of the Wikipedia-style mirror (§6.4).
#[derive(Debug, Clone)]
pub struct WikiSpec {
    /// Number of pages.
    pub pages: usize,
    /// Approximate HTML bytes per page.
    pub bytes_per_page: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WikiSpec {
    fn default() -> Self {
        WikiSpec {
            pages: 50,
            bytes_per_page: 4096,
            seed: 7,
        }
    }
}

/// Generates the wiki mirror: `base/urls.txt` (one page URL per line)
/// plus the HTML pages (one tag per line, entities included).
pub fn generate_wiki(fs: &MemFs, base: &str, spec: &WikiSpec) {
    let mut rng = SplitMix64::new(spec.seed);
    let mut urls = String::new();
    for p in 0..spec.pages {
        let path = format!("{base}/pages/page{p:05}.html");
        urls.push_str(&format!("http://wiki.example/{path}\n"));
        let mut html = String::from("<html>\n<head><title>Page</title></head>\n<body>\n");
        while html.len() < spec.bytes_per_page {
            let words = rng.gen_range_inclusive(5, 14);
            html.push_str("<p>");
            for i in 0..words {
                if i > 0 {
                    html.push(' ');
                }
                html.push_str(zipf_word(&mut rng));
                if rng.gen_bool(0.05) {
                    html.push_str(" &amp; ");
                }
            }
            html.push_str("</p>\n");
        }
        html.push_str("</body>\n</html>\n");
        fs.add(path, html.into_bytes());
    }
    fs.add(format!("{base}/urls.txt"), urls.into_bytes());
}

/// Generates a file of whitespace-delimited columns (for Unix50-style
/// pipelines): alternating word and numeric columns.
pub fn columnar_corpus(seed: u64, rows: usize, fields: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    for _ in 0..rows {
        for f in 0..fields {
            if f > 0 {
                out.push(b' ');
            }
            if f % 2 == 0 {
                out.extend_from_slice(zipf_word(&mut rng).as_bytes());
            } else {
                out.extend_from_slice(rng.gen_range(0, 10_000).to_string().as_bytes());
            }
        }
        out.push(b'\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(text_corpus(1, 1000), text_corpus(1, 1000));
        assert_ne!(text_corpus(1, 1000), text_corpus(2, 1000));
    }

    #[test]
    fn corpus_reaches_size() {
        let c = text_corpus(3, 10_000);
        assert!(c.len() >= 10_000);
        assert!(c.len() < 11_000);
        assert_eq!(*c.last().expect("non-empty"), b'\n');
    }

    #[test]
    fn dictionary_is_sorted_unique() {
        let d = dictionary();
        let lines: Vec<&[u8]> = d.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn noaa_mirror_structure() {
        let fs = MemFs::new();
        let spec = NoaaSpec {
            years: 2015..=2016,
            files_per_year: 2,
            records_per_file: 50,
            seed: 1,
        };
        let truths = generate_noaa(&fs, "noaa", &spec);
        assert_eq!(truths.len(), 2);
        let index = fs.read("noaa/2015/index.txt").expect("index");
        let lines: Vec<&[u8]> = index
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .collect();
        assert_eq!(lines.len(), 2);
        // 9th whitespace field is the file name.
        let f9 = pash_coreutils::lines::split_whitespace(lines[0])[8].to_vec();
        assert!(String::from_utf8(f9).expect("utf8").ends_with(".rec"));
        assert!(fs.read("noaa/2015/2015-000.rec").is_ok());
    }

    #[test]
    fn noaa_temperature_field_position() {
        let fs = MemFs::new();
        let spec = NoaaSpec {
            years: 2015..=2015,
            files_per_year: 1,
            records_per_file: 10,
            seed: 2,
        };
        generate_noaa(&fs, "noaa", &spec);
        let reg = pash_coreutils::Registry::standard();
        let out = pash_coreutils::run_command(
            &reg,
            std::sync::Arc::new(fs.clone()),
            &["unrle", "noaa/2015/2015-000.rec"],
            b"",
        )
        .expect("unrle");
        for line in out.stdout.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            assert_eq!(line.len(), 92, "fixed-width record");
            let temp = &line[88..92];
            assert!(temp.iter().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn noaa_ground_truth_matches_pipeline() {
        // The Fig. 1 computation done directly must agree with the
        // generator's reported ground truth.
        let fs = MemFs::new();
        let spec = NoaaSpec {
            years: 2015..=2015,
            files_per_year: 3,
            records_per_file: 40,
            seed: 3,
        };
        let truths = generate_noaa(&fs, "noaa", &spec);
        let reg = pash_coreutils::Registry::standard();
        let mut max_seen: u32 = 0;
        for f in 0..3 {
            let out = pash_coreutils::run_command(
                &reg,
                std::sync::Arc::new(fs.clone()),
                &["unrle", &format!("noaa/2015/2015-{f:03}.rec")],
                b"",
            )
            .expect("unrle");
            for line in out.stdout.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
                let field = std::str::from_utf8(&line[88..92])
                    .expect("utf8")
                    .parse::<u32>()
                    .expect("number");
                if !format!("{field:04}").contains("999") {
                    max_seen = max_seen.max(field);
                }
            }
        }
        assert_eq!(truths[0].1, max_seen);
    }

    #[test]
    fn wiki_mirror_structure() {
        let fs = MemFs::new();
        generate_wiki(
            &fs,
            "wiki",
            &WikiSpec {
                pages: 3,
                bytes_per_page: 512,
                seed: 1,
            },
        );
        let urls = fs.read("wiki/urls.txt").expect("urls");
        assert_eq!(
            urls.split(|&b| b == b'\n')
                .filter(|l| !l.is_empty())
                .count(),
            3
        );
        let page = fs.read("wiki/pages/page00000.html").expect("page");
        assert!(page.len() >= 512);
        assert!(page.starts_with(b"<html>"));
    }

    #[test]
    fn columnar_corpus_shape() {
        let c = columnar_corpus(5, 10, 4);
        for line in c.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            assert_eq!(pash_coreutils::lines::split_whitespace(line).len(), 4);
        }
    }
}
