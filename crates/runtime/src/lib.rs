//! PaSh runtime primitives and the threaded DFG executor (§5.2).
//!
//! * [`pipe`] — bounded in-process pipes with UNIX semantics
//!   (blocking, EOF on writer drop, broken-pipe on reader drop);
//! * [`relay`] — the `eager` relays that defeat the shell's laziness;
//! * [`split`] / [`fileseg`] — the two splitter implementations;
//! * [`agg`] — the aggregator library (`sort -m`, `uniq`, `uniq -c`,
//!   `wc`, `tac`, counts, and the custom bigram aggregator), fed by
//!   the batched [`scan::LineScanner`];
//! * [`exec`] — thread-per-node execution of compiled
//!   [`pash_core::plan::ExecutionPlan`]s (the `threads` backend).
//!
//! The same primitives are exposed as a standalone multi-call binary
//! (`pash-rt`) so that scripts emitted by the back-end run under a
//! real `/bin/sh`.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use pash_core::compile::PashConfig;
//! use pash_coreutils::{fs::MemFs, Registry};
//! use pash_runtime::exec::{run_script, ExecConfig};
//!
//! let fs = Arc::new(MemFs::new());
//! fs.add("in.txt", b"b\na\nb\n".to_vec());
//! let out = run_script(
//!     "cat in.txt | sort | uniq -c",
//!     &PashConfig { width: 2, ..Default::default() },
//!     &Registry::standard(),
//!     fs,
//!     Vec::new(),
//!     &ExecConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(String::from_utf8(out.stdout).unwrap(), "      1 a\n      2 b\n");
//! ```

pub mod agg;
pub mod cli;
pub mod edge;
pub mod exec;
pub mod fault;
pub mod fileseg;
pub mod frame;
pub mod pipe;
pub mod proc;
pub mod profile;
pub mod relay;
pub mod remote;
pub mod scan;
pub mod service;
pub mod split;
pub mod supervise;

pub use exec::{
    run_program, run_program_with_fallback, run_region, run_script, ExecConfig, ProgramOutput,
    RegionOutput, ThreadedBackend,
};
pub use fault::{ExecError, FaultClass, FaultKind, FaultPlan, INFRA_STATUS};
pub use pipe::{
    pipe, pipe_monitored, MultiReader, PipeMonitor, PipeReader, PipeWriter, DEFAULT_PIPE_CAPACITY,
};
pub use profile::{ProfileStore, RegionProfile};
pub use remote::{run_program_remote, serve_worker, shutdown_worker, WorkerPool};
pub use scan::LineScanner;
pub use service::{
    CacheTier, Client, DiskPlanCache, Request, Response, RunRequest, RunResponse, Semaphore,
    ServiceMetrics, ServiceSettings,
};
pub use supervise::{supervise_region, SupervisorCounters, SupervisorSettings};
