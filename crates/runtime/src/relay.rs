//! Eager relay nodes (§5.2, "Overcoming Laziness", Fig. 6d).
//!
//! A relay is an identity transformation whose purpose is buffering:
//! it "consumes input eagerly while attempting to push, forcing
//! upstream nodes to produce output when possible while also
//! preserving task-based parallelism". The *full* eager relay buffers
//! without bound; the *blocking* variant has a bounded intermediate
//! buffer (more pipelining than a bare FIFO, but still back-pressures).

use std::io::{self, Read, Write};

use crossbeam::channel;

/// Relay buffering modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayMode {
    /// Unbounded buffering (the paper's `eager`).
    Full,
    /// Bounded buffering with this many 8 KiB chunks.
    Blocking(usize),
}

/// Runs a relay: copies `input` to `output` through an intermediate
/// buffer, reading eagerly on a separate thread.
///
/// Returns the number of bytes relayed. A broken output pipe
/// propagates as an error (the relay dies of SIGPIPE like any other
/// node); the eager reader thread then observes the closed channel and
/// stops.
pub fn run_relay(
    mut input: impl Read + Send + 'static,
    output: &mut dyn Write,
    mode: RelayMode,
) -> io::Result<u64> {
    const CHUNK: usize = 8 * 1024;
    let (tx, rx) = match mode {
        RelayMode::Full => channel::unbounded::<Vec<u8>>(),
        RelayMode::Blocking(chunks) => channel::bounded::<Vec<u8>>(chunks.max(1)),
    };
    // Consumed chunks flow back to the reader through this pool, so a
    // steady-state relay recycles a handful of buffers instead of
    // allocating a fresh `Vec` per 8 KiB of traffic.
    let (pool_tx, pool_rx) = channel::unbounded::<Vec<u8>>();
    // The eager half: consume input as fast as possible.
    let reader = std::thread::spawn(move || -> io::Result<()> {
        let mut buf = vec![0u8; CHUNK];
        loop {
            let n = input.read(&mut buf)?;
            if n == 0 {
                return Ok(());
            }
            buf.truncate(n);
            if tx.send(buf).is_err() {
                // Downstream hung up: stop pulling.
                return Ok(());
            }
            buf = pool_rx.try_recv().unwrap_or_default();
            buf.resize(CHUNK, 0);
        }
    });
    // The push half: forward to the consumer at its own pace.
    let mut total = 0u64;
    let mut push_err: Option<io::Error> = None;
    for chunk in rx.iter() {
        if push_err.is_none() {
            match output.write_all(&chunk) {
                Ok(()) => total += chunk.len() as u64,
                Err(e) => push_err = Some(e),
            }
        }
        // Recycle regardless of the write outcome; if the reader is
        // already gone the pool send fails harmlessly.
        let _ = pool_tx.send(chunk);
        // On error keep draining so the reader thread can finish
        // quickly (matching SIGPIPE-style teardown).
        if push_err.is_some() {
            break;
        }
    }
    drop(rx);
    let read_res = reader
        .join()
        .map_err(|_| io::Error::new(io::ErrorKind::Other, "relay reader thread panicked"))?;
    if let Some(e) = push_err {
        return Err(e);
    }
    read_res?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipe::pipe;

    #[test]
    fn relays_all_bytes() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 250) as u8).collect();
        let expected = data.clone();
        let mut out = Vec::new();
        let n = run_relay(io::Cursor::new(data), &mut out, RelayMode::Full).expect("relay");
        assert_eq!(n, 50_000);
        assert_eq!(out, expected);
    }

    #[test]
    fn blocking_mode_relays_all_bytes() {
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 13) as u8).collect();
        let expected = data.clone();
        let mut out = Vec::new();
        run_relay(io::Cursor::new(data), &mut out, RelayMode::Blocking(2)).expect("relay");
        assert_eq!(out, expected);
    }

    #[test]
    fn eager_drains_producer_despite_stalled_consumer() {
        // The producer writes into a tiny pipe; the relay must drain
        // it fully even though no one consumes the relay's output yet
        // — the §5.2 laziness fix.
        let (mut w, r) = pipe(64);
        let producer = std::thread::spawn(move || {
            w.write_all(&vec![7u8; 10_000]).expect("producer write");
            // Returning drops the writer: EOF.
        });
        // The relay's output goes into a buffer only after the
        // producer finished: with a bare FIFO the producer would
        // deadlock (nothing drains the 64-byte pipe).
        let mut out = Vec::new();
        run_relay(r, &mut out, RelayMode::Full).expect("relay");
        producer.join().expect("producer");
        assert_eq!(out.len(), 10_000);
    }

    #[test]
    fn broken_output_pipe_propagates() {
        let (w, r) = pipe(16);
        drop(r); // Consumer already gone.
        let mut w = w;
        let res = run_relay(io::Cursor::new(vec![1u8; 1000]), &mut w, RelayMode::Full);
        assert_eq!(res.expect_err("broken").kind(), io::ErrorKind::BrokenPipe);
    }
}
