//! `pashc` — a multi-call binary exposing every command in the
//! workspace (like busybox), so that PaSh-compiled scripts run
//! hermetically under any POSIX `/bin/sh`:
//!
//! ```text
//! pashc grep -c foo < input
//! ```
//!
//! Since the process backend landed, `pashc` also serves the runtime
//! subcommands (`eager`, `split`, `fileseg`, `pash-agg-*`) and the
//! `--stdin`/`--stdout` FIFO redirections, so every plan node is
//! runnable standalone from one binary. Coreutils names take
//! precedence over runtime names; `pash-rt` is the same dispatch with
//! the opposite precedence. See [`pash_runtime::cli`].

use pash_runtime::cli::{multicall_main, Personality};

fn main() {
    multicall_main("pashc", Personality::Coreutils);
}
