//! `pash-worker` — the remote execution worker daemon.
//!
//! ```text
//! pash-worker --socket PATH
//! ```
//!
//! Listens on a Unix socket for one request per connection: `Ping`
//! (health probe), `Execute` (one unsupervised region attempt,
//! results streamed back in the tagged frame format), or `Shutdown`.
//! All retry and recovery policy lives with the coordinator (see
//! `pash_runtime::remote`); SIGTERM exits the serve loop after the
//! in-flight connections finish.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pash_runtime::remote::{bind_worker, serve_worker};

static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    STOP.store(true, Ordering::SeqCst);
}

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => socket = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: pash-worker --socket PATH");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pash-worker: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("pash-worker: --socket PATH is required");
        return ExitCode::FAILURE;
    };
    let listener = match bind_worker(&socket) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("pash-worker: cannot bind {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };
    // SIGTERM/SIGINT raise the stop flag; the self-connect in the
    // handler below cannot run in signal context, so the serve loop
    // also notices the flag on its next accepted connection — a
    // worker with no traffic is reaped by the socket unlink + the
    // supervisor's health probes, not by a wedged accept.
    unsafe {
        libc_signal(15, on_term); // SIGTERM
        libc_signal(2, on_term); // SIGINT
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_poll = stop.clone();
    let poll_socket = socket.clone();
    std::thread::spawn(move || {
        // Forward the async-signal flag into the serve loop: connect
        // once so a blocked accept wakes and sees the flag.
        loop {
            if STOP.load(Ordering::SeqCst) {
                stop_poll.store(true, Ordering::SeqCst);
                let _ = std::os::unix::net::UnixStream::connect(&poll_socket);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    });
    match serve_worker(listener, &socket, stop) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pash-worker: {e}");
            ExitCode::FAILURE
        }
    }
}

extern "C" {
    #[link_name = "signal"]
    fn libc_signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}
