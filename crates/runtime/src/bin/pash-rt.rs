//! `pash-rt` — the runtime primitives as a multi-call binary, used by
//! scripts emitted by the PaSh back-end:
//!
//! ```text
//! pash-rt eager [--blocking]            # stdin → stdout relay
//! pash-rt split [--sized] OUT…          # scatter stdin to files
//! pash-rt fileseg PATH PART OF          # one file segment to stdout
//! pash-rt pash-agg-… [ARGS] IN…         # aggregator over inputs
//! ```

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use pash_coreutils::fs::{Fs, RealFs};
use pash_coreutils::Registry;
use pash_runtime::agg::run_aggregator;
use pash_runtime::fileseg::read_segment;
use pash_runtime::relay::{run_relay, RelayMode};
use pash_runtime::split::split_general;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => pash_coreutils::SIGPIPE_STATUS,
        Err(e) => {
            eprintln!("pash-rt: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> io::Result<i32> {
    let (name, rest) = match args.split_first() {
        Some(x) => x,
        None => {
            eprintln!("usage: pash-rt (eager|split|fileseg|pash-agg-*) [ARGS…]");
            return Ok(2);
        }
    };
    let cwd = std::env::current_dir()?;
    let fs: Arc<dyn Fs> = Arc::new(RealFs::new(cwd));
    match name.as_str() {
        "eager" => {
            let mode = if rest.first().map(|s| s.as_str()) == Some("--blocking") {
                RelayMode::Blocking(8)
            } else {
                RelayMode::Full
            };
            let stdout = io::stdout();
            let mut out = io::BufWriter::new(stdout.lock());
            run_relay(io::stdin(), &mut out, mode)?;
            out.flush()?;
            Ok(0)
        }
        "split" => {
            let outputs: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            if outputs.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "split needs output paths",
                ));
            }
            let mut writers: Vec<Box<dyn Write + Send>> = Vec::new();
            for o in &outputs {
                writers.push(fs.create(o)?);
            }
            let stdin = io::stdin();
            let mut input = stdin.lock();
            split_general(&mut input, &mut writers)?;
            Ok(0)
        }
        "fileseg" => {
            if rest.len() != 3 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "usage: fileseg PATH PART OF",
                ));
            }
            let part: usize = rest[1]
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad PART"))?;
            let of: usize = rest[2]
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad OF"))?;
            let data = read_segment(&fs, &rest[0], part, of)?;
            let stdout = io::stdout();
            let mut out = stdout.lock();
            out.write_all(&data)?;
            Ok(0)
        }
        agg if agg.starts_with("pash-agg-") => {
            // Separate aggregator arguments from input paths.
            let (agg_args, files) = split_agg_args(agg, rest);
            let mut inputs: Vec<Box<dyn io::Read + Send>> = Vec::new();
            for f in &files {
                inputs.push(fs.open(f)?);
            }
            let mut argv: Vec<String> = vec![agg.to_string()];
            argv.extend(agg_args);
            let registry = Registry::standard();
            let stdout = io::stdout();
            let mut out = io::BufWriter::new(stdout.lock());
            let status = run_aggregator(&argv, inputs, &mut out, &registry, fs)?;
            out.flush()?;
            Ok(status)
        }
        // Commands re-applied as their own aggregator (head, tail):
        // read the named inputs in order, like the command itself.
        other => {
            let registry = Registry::standard();
            let cmd = registry.get(other).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("{other}: not found"))
            })?;
            let stdin = io::stdin();
            let stdout = io::stdout();
            let stderr = io::stderr();
            let mut in_lock: Box<dyn BufRead> = Box::new(stdin.lock());
            let mut out_lock: Box<dyn Write> = Box::new(io::BufWriter::new(stdout.lock()));
            let mut err_lock: Box<dyn Write> = Box::new(stderr.lock());
            let mut cio = pash_coreutils::CmdIo {
                stdin: &mut in_lock,
                stdout: &mut out_lock,
                stderr: &mut err_lock,
                fs,
                registry: &registry,
            };
            let status = cmd.run(&rest.to_vec(), &mut cio)?;
            cio.stdout.flush()?;
            Ok(status)
        }
    }
}

/// Splits aggregator argv into (arguments, input paths).
fn split_agg_args(agg: &str, rest: &[String]) -> (Vec<String>, Vec<String>) {
    match agg {
        "pash-agg-sort" => {
            // Options -k/-t take values; everything non-option is an
            // input path.
            let mut args = Vec::new();
            let mut files = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                if a == "-k" || a == "-t" {
                    args.push(a.clone());
                    if let Some(v) = it.next() {
                        args.push(v.clone());
                    }
                } else if a.starts_with('-') && a.len() > 1 {
                    args.push(a.clone());
                } else {
                    files.push(a.clone());
                }
            }
            (args, files)
        }
        _ => {
            let (args, files): (Vec<String>, Vec<String>) = rest
                .iter()
                .cloned()
                .partition(|a| a.starts_with('-') && a.len() > 1);
            (args, files)
        }
    }
}
