//! `pash-rt` — the runtime primitives as a multi-call binary, used by
//! scripts emitted by the PaSh back-end and by the process backend:
//!
//! ```text
//! pash-rt eager [--blocking]            # stdin → stdout relay
//! pash-rt split [--sized] OUT…          # scatter stdin to files
//! pash-rt fileseg PATH PART OF          # one file segment to stdout
//! pash-rt pash-agg-… [ARGS] IN…         # aggregator over inputs
//! pash-rt [--stdin P] [--stdout P] CMD  # any coreutils command
//! ```
//!
//! Runtime primitives take precedence over same-named coreutils
//! commands; `pashc` is the same dispatch with the opposite
//! precedence. See [`pash_runtime::cli`].

use pash_runtime::cli::{multicall_main, Personality};

fn main() {
    multicall_main("pash-rt", Personality::Runtime);
}
