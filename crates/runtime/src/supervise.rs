//! The execution supervisor: retries, deadlines, and graceful
//! fallback to the sequential baseline.
//!
//! Both backends execute a region as one *attempt* closure returning
//! [`ExecError`] on failure. [`supervise_region`] wraps that closure
//! in the recovery state machine:
//!
//! ```text
//!            ┌────────────┐ transient error,
//!            │  attempt   │ region replayable,
//!       ┌───▶│ (injected  │ retries left
//!       │    │   fault?)  │──────────────┐
//!       │    └─────┬──────┘              │ backoff
//!       │          │ ok                  │ (2^i × base)
//!       │          ▼                     │
//!       │      success                   │
//!       └────────────────────────────────┘
//!                  │ transient error, retries spent
//!                  ▼
//!            ┌────────────┐
//!            │  fallback  │  width-1 sequential re-execution,
//!            │ (width 1,  │  injection disabled — its output IS
//!            │  no fault) │  the definition of correct
//!            └─────┬──────┘
//!                  │ fatal error at any point: give up — the
//!                  ▼ sequential run would fail identically
//!                error
//! ```
//!
//! Retrying is sound because attempts are *replayable*: a region's
//! outputs (stdout buffer, output files) are applied from scratch on
//! every attempt — nothing downstream observes a failed attempt —
//! and the plan marks regions whose commands are pure
//! ([`RegionPlan::replayable`]). Non-replayable regions go straight
//! to the error.
//!
//! Counters record which recovery path ran, so tests can assert "this
//! sweep case exercised a retry / a deadline kill / the fallback"
//! instead of trusting the output alone.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pash_core::plan::RegionPlan;

use crate::fault::{splitmix64, ArmedFault, ExecError, FaultPlan};

/// Recovery counters, shared across a program run (and its clones).
#[derive(Debug, Default)]
pub struct SupervisorCounters {
    retries: AtomicU64,
    deadline_kills: AtomicU64,
    fallbacks: AtomicU64,
    injected: AtomicU64,
    reroutes: AtomicU64,
    local_fallbacks: AtomicU64,
}

impl SupervisorCounters {
    /// Region attempts re-run after a transient failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Attempts killed by the region deadline.
    pub fn deadline_kills(&self) -> u64 {
        self.deadline_kills.load(Ordering::Relaxed)
    }

    /// Regions re-executed through the sequential fallback.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Faults armed and delivered into attempts.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Remote retries that landed on a different worker than the
    /// failed attempt (see `runtime::remote`).
    pub fn reroutes(&self) -> u64 {
        self.reroutes.load(Ordering::Relaxed)
    }

    /// Regions that degraded from the remote backend to the local one
    /// (the middle rung of the recovery ladder).
    pub fn local_fallbacks(&self) -> u64 {
        self.local_fallbacks.load(Ordering::Relaxed)
    }
}

/// Supervisor knobs. Cloning shares the counters, the fault plan's
/// budget, and the per-run retry budget, so per-region clones report
/// into — and draw from — one place.
#[derive(Debug, Clone)]
pub struct SupervisorSettings {
    /// Retries after the first failed attempt of a replayable region.
    pub max_retries: u32,
    /// Backoff before retry `i` is `backoff_base × 2^(i-1)`, scaled
    /// by the seeded jitter factor (see [`jittered_backoff`]).
    pub backoff_base: Duration,
    /// Wall-clock budget per region attempt; `None` disables the
    /// watchdog (the default — deadlines are opt-in because a fair
    /// deadline depends on input size).
    pub region_deadline: Option<Duration>,
    /// Whether exhausted retries degrade to the sequential fallback
    /// (when the caller can provide one).
    pub fallback: bool,
    /// The fault to inject, if any (test plane).
    pub fault: Option<FaultPlan>,
    /// Shared recovery counters.
    pub counters: Arc<SupervisorCounters>,
    /// Seeds the deterministic backoff jitter; mixed with the region
    /// fingerprint and attempt index so k regions retrying a
    /// shared-cause fault spread out instead of resynchronizing.
    pub jitter_seed: u64,
    /// Total retries one program run may spend across all its regions
    /// (`u32::MAX` = unbounded, the default). Installed per run by
    /// [`SupervisorSettings::fresh_run`]; once spent, further
    /// transient failures go straight down the fallback ladder.
    pub retry_budget: u32,
    /// The live per-run budget cell
    /// [`SupervisorSettings::fresh_run`] installs; clones share it.
    /// (Public only so struct-literal update syntax keeps working;
    /// treat as supervisor-internal.)
    pub run_budget: Arc<AtomicU32>,
}

impl Default for SupervisorSettings {
    fn default() -> Self {
        SupervisorSettings {
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            region_deadline: None,
            fallback: true,
            fault: None,
            counters: Arc::new(SupervisorCounters::default()),
            jitter_seed: 0,
            retry_budget: u32::MAX,
            run_budget: Arc::new(AtomicU32::new(u32::MAX)),
        }
    }
}

impl SupervisorSettings {
    /// Counts one deadline kill (backends call this when their
    /// watchdog fires; the supervisor itself cannot see inside an
    /// attempt).
    pub fn note_deadline_kill(&self) {
        self.counters.deadline_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one remote reroute (a retry placed on a different
    /// worker than the failed attempt; see `runtime::remote`).
    pub fn note_reroute(&self) {
        self.counters.reroutes.fetch_add(1, Ordering::Relaxed);
    }

    /// A per-run copy with a fresh retry-budget cell holding
    /// `retry_budget` units. Program drivers call this once at run
    /// start; the per-region clones they hand out then share the
    /// cell, so the budget bounds the whole run's retries, not each
    /// region's.
    pub fn fresh_run(&self) -> SupervisorSettings {
        SupervisorSettings {
            run_budget: Arc::new(AtomicU32::new(self.retry_budget)),
            ..self.clone()
        }
    }

    /// Claims one retry from the per-run budget (`u32::MAX` is
    /// sticky-unbounded). `false` when the budget is spent.
    fn claim_retry(&self) -> bool {
        let mut cur = self.run_budget.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            let next = if cur == u32::MAX { cur } else { cur - 1 };
            match self.run_budget.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(v) => cur = v,
            }
        }
    }
}

/// The backoff before retry `attempt` (1-based): the exponential
/// `base × 2^(attempt-1)`, scaled by a deterministic jitter factor in
/// `[0.5, 1.0)` drawn from `seed` — so the same (seed, attempt)
/// always backs off identically, while different regions/runs spread
/// out instead of retrying in lockstep.
pub fn jittered_backoff(base: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = base.saturating_mul(1 << (attempt - 1).min(16));
    let h = splitmix64(seed.wrapping_add(attempt as u64));
    // nanos × (2^16 + (h mod 2^16)) / 2^17 ∈ [nanos/2, nanos).
    let num = (1u128 << 16) + (h & 0xFFFF) as u128;
    let nanos = (exp.as_nanos().saturating_mul(num)) >> 17;
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

/// Runs one region under supervision.
///
/// `attempt` executes the region once, with the given armed fault (if
/// any) injected; it is invoked up to `1 + max_retries` times for
/// replayable regions. `fallback` — when provided and enabled — runs
/// the region's width-1 sequential form with injection disabled, the
/// last resort that restores the `sh` baseline byte-for-byte.
pub fn supervise_region<T>(
    r: &RegionPlan,
    settings: &SupervisorSettings,
    mut attempt: impl FnMut(Option<ArmedFault>) -> Result<T, ExecError>,
    fallback: Option<impl FnOnce() -> Result<T, ExecError>>,
) -> Result<T, ExecError> {
    supervise_ladder(
        r,
        settings,
        false,
        |_, armed| attempt(armed),
        None::<fn() -> Result<T, ExecError>>,
        fallback,
    )
}

/// Runs one region under the full *remote* recovery ladder:
///
/// ```text
/// remote attempt (placed per attempt index, rerouted on retry)
///   → retries with jittered backoff, bounded by the run budget
///     → local re-execution (clean, no injection)
///       → width-1 sequential fallback
/// ```
///
/// `attempt` receives the attempt index (the remote driver uses it
/// for per-attempt worker placement) and the armed fault, if any —
/// remote-only kinds arm here via [`FaultPlan::arm_remote`]. `local`
/// re-runs the same region on the local backend; `fallback` is the
/// width-1 sequential last resort. Fatal errors abort the ladder at
/// any rung.
pub fn supervise_region_remote<T>(
    r: &RegionPlan,
    settings: &SupervisorSettings,
    attempt: impl FnMut(u32, Option<ArmedFault>) -> Result<T, ExecError>,
    local: Option<impl FnOnce() -> Result<T, ExecError>>,
    fallback: Option<impl FnOnce() -> Result<T, ExecError>>,
) -> Result<T, ExecError> {
    supervise_ladder(r, settings, true, attempt, local, fallback)
}

/// The shared recovery state machine behind [`supervise_region`]
/// (no local rung, local arming) and [`supervise_region_remote`]
/// (full ladder, remote arming).
fn supervise_ladder<T>(
    r: &RegionPlan,
    settings: &SupervisorSettings,
    remote: bool,
    mut attempt: impl FnMut(u32, Option<ArmedFault>) -> Result<T, ExecError>,
    local: Option<impl FnOnce() -> Result<T, ExecError>>,
    fallback: Option<impl FnOnce() -> Result<T, ExecError>>,
) -> Result<T, ExecError> {
    let attempts = if r.replayable {
        1 + settings.max_retries
    } else {
        1
    };
    let jitter = settings.jitter_seed ^ r.fingerprint();
    let mut last: Option<ExecError> = None;
    for i in 0..attempts {
        if i > 0 {
            if !settings.claim_retry() {
                break;
            }
            settings.counters.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(jittered_backoff(settings.backoff_base, i, jitter));
        }
        let armed =
            settings
                .fault
                .as_ref()
                .and_then(|f| if remote { f.arm_remote(r) } else { f.arm(r) });
        if armed.is_some() {
            settings.counters.injected.fetch_add(1, Ordering::Relaxed);
        }
        match attempt(i, armed) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => last = Some(e),
            // Fatal: the sequential run would fail identically;
            // neither retry nor fallback can help.
            Err(e) => return Err(e),
        }
    }
    let last = last.expect("at least one attempt ran");
    if !(settings.fallback && r.replayable) {
        return Err(last);
    }
    // Middle rung: the local backend, clean (no injection, no
    // deadline) — remote infrastructure trouble does not condemn a
    // run to width 1.
    if let Some(run_local) = local {
        settings
            .counters
            .local_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        match run_local() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => {}
            Err(e) => return Err(e),
        }
    }
    // Last rung: width-1 sequential re-execution, injection disabled
    // — its output IS the definition of correct.
    if let Some(run_fallback) = fallback {
        settings.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
        return run_fallback();
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultClass;
    use std::io;

    fn replayable_region() -> RegionPlan {
        RegionPlan {
            replayable: true,
            ..Default::default()
        }
    }

    fn transient() -> ExecError {
        ExecError::transient("node", io::Error::new(io::ErrorKind::Interrupted, "boom"))
    }

    #[test]
    fn first_success_needs_no_recovery() {
        let s = SupervisorSettings::default();
        let out = supervise_region(
            &replayable_region(),
            &s,
            |_| Ok::<_, ExecError>(7),
            None::<fn() -> Result<i32, ExecError>>,
        )
        .expect("ok");
        assert_eq!(out, 7);
        assert_eq!(s.counters.retries(), 0);
        assert_eq!(s.counters.fallbacks(), 0);
    }

    #[test]
    fn transient_failure_retries_then_succeeds() {
        let s = SupervisorSettings {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let mut calls = 0;
        let out = supervise_region(
            &replayable_region(),
            &s,
            |_| {
                calls += 1;
                if calls < 3 {
                    Err(transient())
                } else {
                    Ok(42)
                }
            },
            None::<fn() -> Result<i32, ExecError>>,
        )
        .expect("ok");
        assert_eq!(out, 42);
        assert_eq!(s.counters.retries(), 2);
        assert_eq!(s.counters.fallbacks(), 0);
    }

    #[test]
    fn exhausted_retries_fall_back() {
        let s = SupervisorSettings {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let out = supervise_region(
            &replayable_region(),
            &s,
            |_| Err::<i32, _>(transient()),
            Some(|| Ok(99)),
        )
        .expect("fallback");
        assert_eq!(out, 99);
        assert_eq!(s.counters.retries(), 1);
        assert_eq!(s.counters.fallbacks(), 1);
    }

    #[test]
    fn fatal_errors_do_not_retry_or_fall_back() {
        let s = SupervisorSettings {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let mut calls = 0;
        let err = supervise_region(
            &replayable_region(),
            &s,
            |_| {
                calls += 1;
                Err::<i32, _>(ExecError::fatal(
                    "node",
                    io::Error::new(io::ErrorKind::NotFound, "no such file"),
                ))
            },
            Some(|| Ok(1)),
        )
        .expect_err("fatal");
        assert_eq!(calls, 1);
        assert_eq!(err.class, FaultClass::Fatal);
        assert_eq!(s.counters.fallbacks(), 0);
    }

    #[test]
    fn jitter_is_deterministic_and_banded() {
        let base = Duration::from_millis(40);
        for attempt in 1..=4u32 {
            let exp = base.saturating_mul(1 << (attempt - 1));
            for seed in 0..32u64 {
                let a = jittered_backoff(base, attempt, seed);
                let b = jittered_backoff(base, attempt, seed);
                assert_eq!(a, b, "same (seed, attempt) must back off identically");
                assert!(
                    a >= exp / 2 && a < exp,
                    "{a:?} outside [{exp:?}/2, {exp:?})"
                );
            }
        }
        // Different seeds actually spread out (not all identical).
        let spread: std::collections::HashSet<Duration> =
            (0..32u64).map(|s| jittered_backoff(base, 1, s)).collect();
        assert!(spread.len() > 8, "only {} distinct backoffs", spread.len());
    }

    #[test]
    fn run_retry_budget_bounds_total_retries() {
        // Budget 1, two failing replayable regions: exactly one retry
        // is spent across the run, then both regions fall back.
        let s = SupervisorSettings {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            retry_budget: 1,
            ..Default::default()
        }
        .fresh_run();
        for _ in 0..2 {
            let out = supervise_region(
                &replayable_region(),
                &s,
                |_| Err::<i32, _>(transient()),
                Some(|| Ok(5)),
            )
            .expect("fallback");
            assert_eq!(out, 5);
        }
        assert_eq!(s.counters.retries(), 1, "budget caps retries run-wide");
        assert_eq!(s.counters.fallbacks(), 2);
        // fresh_run reinstalls the budget for the next run.
        let s2 = s.fresh_run();
        supervise_region(
            &replayable_region(),
            &s2,
            |_| Err::<i32, _>(transient()),
            Some(|| Ok(5)),
        )
        .expect("fallback");
        assert_eq!(s2.counters.retries(), 2);
    }

    #[test]
    fn remote_ladder_degrades_remote_to_local_to_sequential() {
        let s = SupervisorSettings {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        // Local rung succeeds: sequential fallback untouched.
        let out = supervise_region_remote(
            &replayable_region(),
            &s,
            |_, _| Err::<i32, _>(transient()),
            Some(|| Ok(11)),
            Some(|| Ok(99)),
        )
        .expect("local rung");
        assert_eq!(out, 11);
        assert_eq!(s.counters.local_fallbacks(), 1);
        assert_eq!(s.counters.fallbacks(), 0);
        // Local rung also transient: the sequential rung finishes it.
        let out = supervise_region_remote(
            &replayable_region(),
            &s,
            |_, _| Err::<i32, _>(transient()),
            Some(|| Err::<i32, _>(transient())),
            Some(|| Ok(99)),
        )
        .expect("sequential rung");
        assert_eq!(out, 99);
        assert_eq!(s.counters.local_fallbacks(), 2);
        assert_eq!(s.counters.fallbacks(), 1);
        // Attempt indices arrive in order (placement input).
        let mut seen = Vec::new();
        let _ = supervise_region_remote(
            &replayable_region(),
            &s,
            |i, _| {
                seen.push(i);
                Err::<i32, _>(transient())
            },
            None::<fn() -> Result<i32, ExecError>>,
            Some(|| Ok(0)),
        );
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn non_replayable_regions_fail_on_first_transient() {
        let s = SupervisorSettings {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let r = RegionPlan::default(); // replayable: false
        let mut calls = 0;
        supervise_region(
            &r,
            &s,
            |_| {
                calls += 1;
                Err::<i32, _>(transient())
            },
            Some(|| Ok(1)),
        )
        .expect_err("no retry");
        assert_eq!(calls, 1);
        assert_eq!(s.counters.retries(), 0);
        assert_eq!(s.counters.fallbacks(), 0);
    }
}
