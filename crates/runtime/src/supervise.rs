//! The execution supervisor: retries, deadlines, and graceful
//! fallback to the sequential baseline.
//!
//! Both backends execute a region as one *attempt* closure returning
//! [`ExecError`] on failure. [`supervise_region`] wraps that closure
//! in the recovery state machine:
//!
//! ```text
//!            ┌────────────┐ transient error,
//!            │  attempt   │ region replayable,
//!       ┌───▶│ (injected  │ retries left
//!       │    │   fault?)  │──────────────┐
//!       │    └─────┬──────┘              │ backoff
//!       │          │ ok                  │ (2^i × base)
//!       │          ▼                     │
//!       │      success                   │
//!       └────────────────────────────────┘
//!                  │ transient error, retries spent
//!                  ▼
//!            ┌────────────┐
//!            │  fallback  │  width-1 sequential re-execution,
//!            │ (width 1,  │  injection disabled — its output IS
//!            │  no fault) │  the definition of correct
//!            └─────┬──────┘
//!                  │ fatal error at any point: give up — the
//!                  ▼ sequential run would fail identically
//!                error
//! ```
//!
//! Retrying is sound because attempts are *replayable*: a region's
//! outputs (stdout buffer, output files) are applied from scratch on
//! every attempt — nothing downstream observes a failed attempt —
//! and the plan marks regions whose commands are pure
//! ([`RegionPlan::replayable`]). Non-replayable regions go straight
//! to the error.
//!
//! Counters record which recovery path ran, so tests can assert "this
//! sweep case exercised a retry / a deadline kill / the fallback"
//! instead of trusting the output alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pash_core::plan::RegionPlan;

use crate::fault::{ArmedFault, ExecError, FaultPlan};

/// Recovery counters, shared across a program run (and its clones).
#[derive(Debug, Default)]
pub struct SupervisorCounters {
    retries: AtomicU64,
    deadline_kills: AtomicU64,
    fallbacks: AtomicU64,
    injected: AtomicU64,
}

impl SupervisorCounters {
    /// Region attempts re-run after a transient failure.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Attempts killed by the region deadline.
    pub fn deadline_kills(&self) -> u64 {
        self.deadline_kills.load(Ordering::Relaxed)
    }

    /// Regions re-executed through the sequential fallback.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Faults armed and delivered into attempts.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

/// Supervisor knobs. Cloning shares the counters (and the fault
/// plan's budget), so per-region clones report into one place.
#[derive(Debug, Clone)]
pub struct SupervisorSettings {
    /// Retries after the first failed attempt of a replayable region.
    pub max_retries: u32,
    /// Backoff before retry `i` is `backoff_base × 2^(i-1)`.
    pub backoff_base: Duration,
    /// Wall-clock budget per region attempt; `None` disables the
    /// watchdog (the default — deadlines are opt-in because a fair
    /// deadline depends on input size).
    pub region_deadline: Option<Duration>,
    /// Whether exhausted retries degrade to the sequential fallback
    /// (when the caller can provide one).
    pub fallback: bool,
    /// The fault to inject, if any (test plane).
    pub fault: Option<FaultPlan>,
    /// Shared recovery counters.
    pub counters: Arc<SupervisorCounters>,
}

impl Default for SupervisorSettings {
    fn default() -> Self {
        SupervisorSettings {
            max_retries: 2,
            backoff_base: Duration::from_millis(25),
            region_deadline: None,
            fallback: true,
            fault: None,
            counters: Arc::new(SupervisorCounters::default()),
        }
    }
}

impl SupervisorSettings {
    /// Counts one deadline kill (backends call this when their
    /// watchdog fires; the supervisor itself cannot see inside an
    /// attempt).
    pub fn note_deadline_kill(&self) {
        self.counters.deadline_kills.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs one region under supervision.
///
/// `attempt` executes the region once, with the given armed fault (if
/// any) injected; it is invoked up to `1 + max_retries` times for
/// replayable regions. `fallback` — when provided and enabled — runs
/// the region's width-1 sequential form with injection disabled, the
/// last resort that restores the `sh` baseline byte-for-byte.
pub fn supervise_region<T>(
    r: &RegionPlan,
    settings: &SupervisorSettings,
    mut attempt: impl FnMut(Option<ArmedFault>) -> Result<T, ExecError>,
    fallback: Option<impl FnOnce() -> Result<T, ExecError>>,
) -> Result<T, ExecError> {
    let attempts = if r.replayable {
        1 + settings.max_retries
    } else {
        1
    };
    let mut last: Option<ExecError> = None;
    for i in 0..attempts {
        if i > 0 {
            settings.counters.retries.fetch_add(1, Ordering::Relaxed);
            let backoff = settings.backoff_base.saturating_mul(1 << (i - 1).min(16));
            std::thread::sleep(backoff);
        }
        let armed = settings.fault.as_ref().and_then(|f| f.arm(r));
        if armed.is_some() {
            settings.counters.injected.fetch_add(1, Ordering::Relaxed);
        }
        match attempt(armed) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => last = Some(e),
            // Fatal: the sequential run would fail identically;
            // neither retry nor fallback can help.
            Err(e) => return Err(e),
        }
    }
    let last = last.expect("at least one attempt ran");
    if settings.fallback && r.replayable {
        if let Some(run_fallback) = fallback {
            settings.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            return run_fallback();
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultClass;
    use std::io;

    fn replayable_region() -> RegionPlan {
        RegionPlan {
            replayable: true,
            ..Default::default()
        }
    }

    fn transient() -> ExecError {
        ExecError::transient("node", io::Error::new(io::ErrorKind::Interrupted, "boom"))
    }

    #[test]
    fn first_success_needs_no_recovery() {
        let s = SupervisorSettings::default();
        let out = supervise_region(
            &replayable_region(),
            &s,
            |_| Ok::<_, ExecError>(7),
            None::<fn() -> Result<i32, ExecError>>,
        )
        .expect("ok");
        assert_eq!(out, 7);
        assert_eq!(s.counters.retries(), 0);
        assert_eq!(s.counters.fallbacks(), 0);
    }

    #[test]
    fn transient_failure_retries_then_succeeds() {
        let s = SupervisorSettings {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let mut calls = 0;
        let out = supervise_region(
            &replayable_region(),
            &s,
            |_| {
                calls += 1;
                if calls < 3 {
                    Err(transient())
                } else {
                    Ok(42)
                }
            },
            None::<fn() -> Result<i32, ExecError>>,
        )
        .expect("ok");
        assert_eq!(out, 42);
        assert_eq!(s.counters.retries(), 2);
        assert_eq!(s.counters.fallbacks(), 0);
    }

    #[test]
    fn exhausted_retries_fall_back() {
        let s = SupervisorSettings {
            max_retries: 1,
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let out = supervise_region(
            &replayable_region(),
            &s,
            |_| Err::<i32, _>(transient()),
            Some(|| Ok(99)),
        )
        .expect("fallback");
        assert_eq!(out, 99);
        assert_eq!(s.counters.retries(), 1);
        assert_eq!(s.counters.fallbacks(), 1);
    }

    #[test]
    fn fatal_errors_do_not_retry_or_fall_back() {
        let s = SupervisorSettings {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let mut calls = 0;
        let err = supervise_region(
            &replayable_region(),
            &s,
            |_| {
                calls += 1;
                Err::<i32, _>(ExecError::fatal(
                    "node",
                    io::Error::new(io::ErrorKind::NotFound, "no such file"),
                ))
            },
            Some(|| Ok(1)),
        )
        .expect_err("fatal");
        assert_eq!(calls, 1);
        assert_eq!(err.class, FaultClass::Fatal);
        assert_eq!(s.counters.fallbacks(), 0);
    }

    #[test]
    fn non_replayable_regions_fail_on_first_transient() {
        let s = SupervisorSettings {
            backoff_base: Duration::from_millis(1),
            ..Default::default()
        };
        let r = RegionPlan::default(); // replayable: false
        let mut calls = 0;
        supervise_region(
            &r,
            &s,
            |_| {
                calls += 1;
                Err::<i32, _>(transient())
            },
            Some(|| Ok(1)),
        )
        .expect_err("no retry");
        assert_eq!(calls, 1);
        assert_eq!(s.counters.retries(), 0);
        assert_eq!(s.counters.fallbacks(), 0);
    }
}
