//! The threaded plan executor.
//!
//! Runs a compiled [`ExecutionPlan`] in-process: one OS thread per
//! plan node, bounded [`crate::pipe`]s for edges. This engine is the
//! correctness vehicle of the reproduction — the parallel output must
//! be byte-identical to the sequential output, which the integration
//! suite checks for every benchmark script.
//!
//! The executor never inspects the compiler's DFG: everything it
//! needs (edge endpoint kinds, stream-argument roles, stdin routing,
//! output producers, guard structure) arrives resolved in the plan.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pash_core::compile::PashConfig;
use pash_core::plan::{
    fold_statuses, Arg, Backend, ExecutionPlan, PlanNode, PlanNodeId, PlanOp, PlanStep, RegionPlan,
    SplitMode,
};

use pash_coreutils::fs::Fs;
use pash_coreutils::{CmdIo, Registry, SIGPIPE_STATUS};

use crate::agg::run_aggregator;
use crate::edge::MemEdges;
use crate::fault::{ArmedFault, ExecError, FaultKind};
use crate::frame::{write_frame, FrameReader};
use crate::pipe::{MultiReader, DEFAULT_PIPE_CAPACITY};
use crate::profile::{CountingReader, CountingWriter, ProfileStore, RegionProfile};
use crate::relay::{run_relay, RelayMode};
use crate::split::{split_general, split_round_robin};
use crate::supervise::{supervise_region, SupervisorSettings};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Pipe capacity in bytes (the kernel pipe buffer analogue).
    pub pipe_capacity: usize,
    /// Bounded-relay buffer, in 8 KiB chunks (the "blocking eager").
    pub blocking_relay_chunks: usize,
    /// Maximum number of independent regions in flight at once. The
    /// default of 1 executes steps strictly in plan order; larger
    /// values let non-conflicting regions (per
    /// [`ExecutionPlan::parallel_waves`]) overlap.
    pub max_inflight: usize,
    /// The execution supervisor: retries, region deadlines, fault
    /// injection, sequential fallback (see [`crate::supervise`]).
    pub supervisor: SupervisorSettings,
    /// When set, successful region attempts record per-node
    /// bytes-in/bytes-out and busy-time here (the adaptive
    /// optimizer's measurement plane; see [`crate::profile`]). `None`
    /// (the default) skips all instrumentation.
    pub profile: Option<Arc<ProfileStore>>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            pipe_capacity: DEFAULT_PIPE_CAPACITY,
            blocking_relay_chunks: 8,
            max_inflight: 1,
            supervisor: SupervisorSettings::default(),
            profile: None,
        }
    }
}

/// Locks a mutex, tolerating poison: a panicking node thread must not
/// cascade into every other thread that shares the status table.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Result of executing one region plan.
#[derive(Debug)]
pub struct RegionOutput {
    /// Bytes the region wrote to its stdout edge(s).
    pub stdout: Vec<u8>,
    /// Exit status per node, in completion order.
    pub statuses: Vec<(PlanNodeId, i32)>,
    /// The region's overall status: the [`fold_statuses`] fold over
    /// the region's [`RegionPlan::status_sources`] — the commands
    /// whose exit codes the sequential pipeline would have reported.
    /// For a sequential region this is exactly the final producer's
    /// status; for a parallelized one it reproduces the sequential
    /// verdict (e.g. a `grep` miss stays status 1 at any width).
    pub status: i32,
}

impl RegionOutput {
    /// The region's overall status (see the `status` field).
    pub fn status(&self) -> i32 {
        self.status
    }
}

/// A filesystem overlay that exposes in-flight streams as paths.
///
/// Stream-role arguments in a node's argv are rewritten to
/// `pash://stream/k`; the command opens them like files, each exactly
/// once.
struct StreamFs {
    base: Arc<dyn Fs>,
    streams: Mutex<HashMap<String, Box<dyn Read + Send>>>,
}

impl StreamFs {
    fn path_for(k: usize) -> String {
        format!("pash://stream/{k}")
    }
}

impl Fs for StreamFs {
    fn open(&self, path: &str) -> io::Result<Box<dyn Read + Send>> {
        if path.starts_with("pash://stream/") {
            return self
                .streams
                .lock()
                .expect("stream table lock")
                .remove(path)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("stream {path} already consumed"),
                    )
                });
        }
        self.base.open(path)
    }

    fn create(&self, path: &str) -> io::Result<Box<dyn Write + Send>> {
        self.base.create(path)
    }

    fn size(&self, path: &str) -> io::Result<u64> {
        self.base.size(path)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        self.base.list(dir)
    }
}

/// Executes one region plan.
///
/// `stdin` feeds the region's primary boundary pipe input (if any).
/// This is a single unsupervised attempt; retries, deadlines, and
/// fallback live in [`run_program`]'s per-step supervision.
pub fn run_region(
    r: &RegionPlan,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
) -> io::Result<RegionOutput> {
    run_region_attempt(r, registry, fs, stdin, cfg, None, None).map_err(io::Error::from)
}

/// One unsupervised attempt with an optional armed fault — the remote
/// worker's entry point. The coordinator owns retries, deadlines, and
/// the fallback ladder; a worker only ever runs a single faithful (or
/// faithfully faulted) attempt and reports the classified outcome.
pub fn run_region_faulted(
    r: &RegionPlan,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
    fault: Option<&ArmedFault>,
) -> Result<RegionOutput, ExecError> {
    run_region_attempt(r, registry, fs, stdin, cfg, fault, None)
}

/// One attempt at a region, with optional fault injection and an
/// optional deadline (taken from `settings`).
///
/// The deadline is enforced by a watchdog thread: on expiry it poisons
/// every in-memory pipe (unblocking parked readers and writers with
/// `TimedOut`) and cancels any injected stall, so wedged node threads
/// unwind promptly instead of hanging the scope. The thread-backend
/// analogue of SIGKILL-after-grace.
fn run_region_attempt(
    r: &RegionPlan,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
    fault: Option<&ArmedFault>,
    settings: Option<&SupervisorSettings>,
) -> Result<RegionOutput, ExecError> {
    r.validate()
        .map_err(|e| ExecError::fatal("plan", io::Error::new(io::ErrorKind::InvalidInput, e)))?;
    let mut edges = MemEdges::wire_with(r, &fs, stdin, cfg.pipe_capacity, fault)
        .map_err(|e| ExecError::classify("edge wiring", e))?;
    let stdout_buf = edges.stdout_handle();
    let monitors = edges.take_monitors();
    let deadline = settings.and_then(|s| s.region_deadline);
    let deadline_hit = Arc::new(AtomicBool::new(false));
    let remaining = Arc::new(AtomicUsize::new(r.nodes.len()));
    let profile = cfg.profile.as_ref().map(|_| RegionProfile::for_region(r));

    // Spawn one thread per node in plan (topological) order — order is
    // not semantically required (pipes synchronize) but makes teardown
    // deterministic in tests.
    let statuses: Arc<Mutex<Vec<(PlanNodeId, i32)>>> = Arc::new(Mutex::new(Vec::new()));
    let hard_error: Arc<Mutex<Option<ExecError>>> = Arc::new(Mutex::new(None));
    std::thread::scope(|scope| {
        if let Some(limit) = deadline {
            let remaining = remaining.clone();
            let deadline_hit = deadline_hit.clone();
            let monitors = &monitors;
            let cancel = fault.map(|a| a.cancel.clone());
            scope.spawn(move || {
                let end = Instant::now() + limit;
                loop {
                    if remaining.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    let now = Instant::now();
                    if now >= end {
                        deadline_hit.store(true, Ordering::Release);
                        if let Some(c) = &cancel {
                            c.cancel();
                        }
                        for m in monitors {
                            m.poison();
                        }
                        return;
                    }
                    std::thread::sleep((end - now).min(Duration::from_millis(5)));
                }
            });
        }
        for (id, node) in r.nodes.iter().enumerate() {
            let mut ins = edges.take_inputs(node);
            let mut outs = edges.take_outputs(node);
            if let Some(p) = &profile {
                ins = ins
                    .into_iter()
                    .map(|r| Box::new(CountingReader::new(r, p.clone(), id)) as _)
                    .collect();
                outs = outs
                    .into_iter()
                    .map(|w| Box::new(CountingWriter::new(w, p.clone(), id)) as _)
                    .collect();
            }
            let profile = profile.clone();
            let registry = registry.clone();
            let fs = fs.clone();
            let statuses = statuses.clone();
            let hard_error = hard_error.clone();
            let remaining = remaining.clone();
            let ecfg = cfg.clone();
            let spawn_fault = fault
                .filter(|a| {
                    a.node == Some(id)
                        && matches!(a.kind, FaultKind::SpawnFail | FaultKind::SpawnDelay)
                })
                .cloned();
            scope.spawn(move || {
                let res = (|| {
                    if let Some(a) = &spawn_fault {
                        match a.kind {
                            FaultKind::SpawnFail => {
                                // Dropping ins/outs closes the node's
                                // edges, so neighbours tear down.
                                return Err(io::Error::new(
                                    io::ErrorKind::Interrupted,
                                    "injected spawn failure",
                                ));
                            }
                            FaultKind::SpawnDelay => std::thread::sleep(a.delay),
                            _ => {}
                        }
                    }
                    let started = Instant::now();
                    let res = run_node(node, ins, outs, &registry, fs, &ecfg);
                    if let Some(p) = &profile {
                        p.add_busy(id, started.elapsed());
                    }
                    res
                })();
                match res {
                    Ok(s) => lock(&statuses).push((id, s)),
                    Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {
                        // SIGPIPE-style death: normal early-exit
                        // teardown, not an error.
                        lock(&statuses).push((id, SIGPIPE_STATUS));
                    }
                    Err(e) => {
                        lock(&statuses).push((id, 127));
                        lock(&hard_error).get_or_insert(ExecError::classify("node", e).at_node(id));
                    }
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
            });
        }
    });
    if deadline_hit.load(Ordering::Acquire) {
        if let Some(s) = settings {
            s.note_deadline_kill();
        }
        return Err(ExecError::transient(
            "region deadline",
            io::Error::new(io::ErrorKind::TimedOut, "region deadline exceeded"),
        ));
    }
    if let Some(e) = lock(&hard_error).take() {
        return Err(e);
    }
    // The attempt completed without infrastructure failure: its byte
    // counts and timings describe a full run, so fold them into the
    // store. (Failed attempts would under-report bytes.)
    if let (Some(store), Some(p)) = (&cfg.profile, &profile) {
        store.record(p);
    }
    let stdout = std::mem::take(&mut *lock(&stdout_buf));
    let statuses = std::mem::take(&mut *lock(&statuses));
    // The sequential pipeline's verdict: fold the statuses of the
    // real commands behind the output (the emitted script does the
    // same with its `pash_spids` wait loop).
    let status_of = |id: PlanNodeId| {
        statuses
            .iter()
            .rev()
            .find(|(n, _)| *n == id)
            .map(|(_, s)| *s)
            .unwrap_or(0)
    };
    let source_statuses: Vec<i32> = r.status_sources().into_iter().map(status_of).collect();
    let status = fold_statuses(&source_statuses);
    Ok(RegionOutput {
        stdout,
        statuses,
        status,
    })
}

/// Executes one node's work on the current thread.
fn run_node(
    node: &PlanNode,
    mut ins: Vec<Box<dyn Read + Send>>,
    mut outs: Vec<Box<dyn Write + Send>>,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    cfg: &ExecConfig,
) -> io::Result<i32> {
    match &node.op {
        PlanOp::Exec { argv, framed } => {
            // Stream-role args become virtual stream paths; the
            // remaining inputs feed stdin in plan order.
            let mut slots: Vec<Option<Box<dyn Read + Send>>> = ins.drain(..).map(Some).collect();
            let mut stream_table: HashMap<String, Box<dyn Read + Send>> = HashMap::new();
            let mut final_argv: Vec<String> = Vec::with_capacity(argv.len());
            for a in argv {
                match a {
                    Arg::Lit(w) => final_argv.push(w.clone()),
                    Arg::Stream(k) => {
                        if let Some(r) = slots.get_mut(*k).and_then(|s| s.take()) {
                            stream_table.insert(StreamFs::path_for(*k), r);
                        }
                        final_argv.push(StreamFs::path_for(*k));
                    }
                }
            }
            let stdin_sources: Vec<Box<dyn Read + Send>> = node
                .stdin_inputs
                .iter()
                .filter_map(|&k| slots.get_mut(k).and_then(|s| s.take()))
                .collect();
            let (name, args) = final_argv
                .split_first()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty argv"))?;
            let args = args.to_vec();
            let cmd = registry.get(name).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("{name}: not found"))
            })?;
            let stream_fs = Arc::new(StreamFs {
                base: fs,
                streams: Mutex::new(stream_table),
            });
            let mut stderr = io::sink();
            let mut out = outs.pop().expect("command has one output");
            if *framed {
                // Framed worker: run the command once per tagged
                // block, re-emitting its output under the same tag so
                // order survives to the reorderer. The node's status
                // folds the per-block statuses exactly like the
                // region-level fold (so e.g. `grep` reports a miss
                // only if every block missed).
                let mut frames = FrameReader::new(MultiReader::new(stdin_sources));
                let mut statuses = Vec::new();
                while let Some((tag, payload)) = frames.next_frame()? {
                    let mut stdin = io::Cursor::new(payload);
                    let mut buf = Vec::new();
                    let mut cio = CmdIo {
                        stdin: &mut stdin,
                        stdout: &mut buf,
                        stderr: &mut stderr,
                        fs: stream_fs.clone(),
                        registry,
                    };
                    statuses.push(cmd.run(&args, &mut cio)?);
                    write_frame(&mut out, tag, &buf)?;
                }
                if statuses.is_empty() {
                    // No blocks reached this worker: run once on
                    // empty input for the status, emit nothing.
                    let mut stdin = io::empty();
                    let mut sink = Vec::new();
                    let mut cio = CmdIo {
                        stdin: &mut stdin,
                        stdout: &mut sink,
                        stderr: &mut stderr,
                        fs: stream_fs,
                        registry,
                    };
                    statuses.push(cmd.run(&args, &mut cio)?);
                }
                out.flush()?;
                return Ok(fold_statuses(&statuses));
            }
            let mut stdin = io::BufReader::new(MultiReader::new(stdin_sources));
            let mut cio = CmdIo {
                stdin: &mut stdin,
                stdout: &mut out,
                stderr: &mut stderr,
                fs: stream_fs,
                registry,
            };
            let status = cmd.run(&args, &mut cio)?;
            // Flush the edge buffer while errors can still be
            // reported; the drop-time flush swallows them.
            out.flush()?;
            Ok(status)
        }
        PlanOp::Cat => {
            let mut out = outs.pop().expect("cat has one output");
            for mut r in ins {
                let mut buf = [0u8; 64 * 1024];
                loop {
                    let n = r.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    out.write_all(&buf[..n])?;
                }
            }
            out.flush()?;
            Ok(0)
        }
        PlanOp::Relay { blocking } => {
            let input = ins.pop().expect("relay has one input");
            let mut out = outs.pop().expect("relay has one output");
            let mode = if *blocking {
                RelayMode::Blocking(cfg.blocking_relay_chunks)
            } else {
                RelayMode::Full
            };
            run_relay(input, &mut out, mode)?;
            out.flush()?;
            Ok(0)
        }
        PlanOp::Split { mode } => {
            // The sized variant needs a file-backed input; on a pipe
            // the general and sized splitters behave identically for
            // correctness (the performance difference is the
            // simulator's concern). Round-robin deals tagged blocks.
            let input = ins.pop().expect("split has one input");
            let mut r = io::BufReader::new(input);
            match mode {
                SplitMode::RoundRobin { framed } => split_round_robin(&mut r, &mut outs, *framed)?,
                SplitMode::General | SplitMode::Sized => split_general(&mut r, &mut outs)?,
            }
            for out in outs.iter_mut() {
                // Same discipline as the split itself: a chunk whose
                // consumer is gone is abandoned, not fatal.
                match out.flush() {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(0)
        }
        PlanOp::Aggregate { argv } => {
            let mut out = outs.pop().expect("aggregate has one output");
            let status = run_aggregator(argv, ins, &mut out, registry, fs)?;
            out.flush()?;
            Ok(status)
        }
    }
}

/// Result of executing a whole plan.
#[derive(Debug)]
pub struct ProgramOutput {
    /// Bytes written to stdout across all regions.
    pub stdout: Vec<u8>,
    /// Status of the last executed step.
    pub status: i32,
}

/// Executes a plan step by step.
///
/// `Shell` steps are supported only when they are no-ops for the data
/// path (assignments, comments): the front-end already folded their
/// effect into the compile-time environment and lowering marked them
/// `data_noop`. Anything else is an error — the hermetic executor
/// does not run arbitrary shell.
pub fn run_program(
    plan: &ExecutionPlan,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
) -> io::Result<ProgramOutput> {
    run_program_with_fallback(plan, None, registry, fs, stdin, cfg)
}

/// Two plans compiled from the same source at different widths have
/// the same step skeleton (lowering maps source steps 1:1 regardless
/// of width); anything else means the fallback plan is not a
/// re-execution of the same program and must not be used.
fn plans_align(a: &ExecutionPlan, b: &ExecutionPlan) -> bool {
    a.steps.len() == b.steps.len()
        && a.steps.iter().zip(&b.steps).all(|(x, y)| match (x, y) {
            (PlanStep::Region(_), PlanStep::Region(_)) => true,
            (PlanStep::Guard(g), PlanStep::Guard(h)) => g == h,
            (PlanStep::Shell { text: t, .. }, PlanStep::Shell { text: u, .. }) => t == u,
            _ => false,
        })
}

/// [`run_program`] with an optional sequential fallback plan: the same
/// program compiled at width 1. When a region exhausts its retries
/// under the supervisor, the aligned fallback region re-executes it
/// through the sequential path — by construction that output is the
/// reference output, so a fault can degrade performance but never
/// correctness.
pub fn run_program_with_fallback(
    plan: &ExecutionPlan,
    fallback: Option<&ExecutionPlan>,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
) -> io::Result<ProgramOutput> {
    // Each program run gets a fresh total-retry budget: one flaky
    // region cannot starve later regions of another run's retries.
    let cfg = &ExecConfig {
        supervisor: cfg.supervisor.fresh_run(),
        ..cfg.clone()
    };
    let fallback = fallback.filter(|f| plans_align(plan, f));
    let fb_step = |i: usize| -> Option<&RegionPlan> {
        match fallback.map(|f| &f.steps[i]) {
            Some(PlanStep::Region(r)) => Some(r),
            _ => None,
        }
    };
    let mut st = StepState {
        stdout: Vec::new(),
        status: 0,
        stdin: Some(stdin),
        skip_next: false,
    };
    if cfg.max_inflight > 1 {
        for wave in plan.parallel_waves() {
            if wave.len() > 1 && !st.skip_next {
                run_wave(plan, fallback, &wave, registry, &fs, cfg, &mut st)?;
            } else {
                for &i in &wave {
                    run_step(&plan.steps[i], fb_step(i), registry, &fs, cfg, &mut st)?;
                }
            }
        }
    } else {
        for (i, step) in plan.steps.iter().enumerate() {
            run_step(step, fb_step(i), registry, &fs, cfg, &mut st)?;
        }
    }
    Ok(ProgramOutput {
        stdout: st.stdout,
        status: st.status,
    })
}

/// Runs one region under the supervisor: bounded retries with backoff
/// for replayable regions, a per-attempt fault arm, and (when retries
/// are exhausted) re-execution through the width-1 `fallback` region.
fn run_supervised(
    r: &RegionPlan,
    fallback: Option<&RegionPlan>,
    registry: &Registry,
    fs: &Arc<dyn Fs>,
    feed: Vec<u8>,
    cfg: &ExecConfig,
) -> io::Result<RegionOutput> {
    let sup = &cfg.supervisor;
    let mut attempt = |armed: Option<ArmedFault>| {
        run_region_attempt(
            r,
            registry,
            fs.clone(),
            feed.clone(),
            cfg,
            armed.as_ref(),
            Some(sup),
        )
    };
    let out = match fallback {
        Some(fb) => supervise_region(
            r,
            sup,
            &mut attempt,
            Some(|| {
                // The fallback attempt runs the sequential region with no
                // injection and no deadline: it is the reference run.
                run_region_attempt(fb, registry, fs.clone(), feed.clone(), cfg, None, None)
            }),
        ),
        None => supervise_region(
            r,
            sup,
            &mut attempt,
            None::<fn() -> Result<RegionOutput, ExecError>>,
        ),
    };
    out.map_err(io::Error::from)
}

/// Mutable interpreter state threaded through steps.
struct StepState {
    stdout: Vec<u8>,
    status: i32,
    stdin: Option<Vec<u8>>,
    skip_next: bool,
}

/// Executes one plan step sequentially.
fn run_step(
    step: &PlanStep,
    fallback: Option<&RegionPlan>,
    registry: &Registry,
    fs: &Arc<dyn Fs>,
    cfg: &ExecConfig,
    st: &mut StepState,
) -> io::Result<()> {
    match step {
        PlanStep::Guard(cond) => {
            st.skip_next = !cond.admits(st.status);
        }
        PlanStep::Region(r) => {
            if std::mem::take(&mut st.skip_next) {
                return Ok(());
            }
            // Only a region that consumes stdin takes the bytes; the
            // emitted script keeps real stdin on a saved fd, so a
            // later reader still sees it.
            let feed = if r.reads_stdin() {
                st.stdin.take().unwrap_or_default()
            } else {
                Vec::new()
            };
            let out = run_supervised(r, fallback, registry, fs, feed, cfg)?;
            st.status = out.status();
            st.stdout.extend_from_slice(&out.stdout);
        }
        PlanStep::Shell { text, data_noop } => {
            if std::mem::take(&mut st.skip_next) {
                return Ok(());
            }
            if !data_noop {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    format!("cannot execute shell step in-process: `{text}`"),
                ));
            }
            st.status = 0;
        }
    }
    Ok(())
}

/// Runs a wave of mutually independent regions concurrently, at most
/// `max_inflight` at a time. Outputs and the final status are applied
/// in step order, so the result is indistinguishable from sequential
/// execution (the wave builder guarantees members share no files, no
/// stdin, and no stdout).
fn run_wave(
    plan: &ExecutionPlan,
    fallback: Option<&ExecutionPlan>,
    wave: &[usize],
    registry: &Registry,
    fs: &Arc<dyn Fs>,
    cfg: &ExecConfig,
    st: &mut StepState,
) -> io::Result<()> {
    for chunk in wave.chunks(cfg.max_inflight.max(1)) {
        let mut jobs: Vec<(usize, &RegionPlan, Option<&RegionPlan>, Vec<u8>)> =
            Vec::with_capacity(chunk.len());
        for &i in chunk {
            let PlanStep::Region(r) = &plan.steps[i] else {
                // The wave builder only groups regions; anything else
                // is a bug there, not here.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "non-region step in a parallel wave",
                ));
            };
            let fb = match fallback.map(|f| &f.steps[i]) {
                Some(PlanStep::Region(fr)) => Some(fr),
                _ => None,
            };
            let feed = if r.reads_stdin() {
                st.stdin.take().unwrap_or_default()
            } else {
                Vec::new()
            };
            jobs.push((i, r, fb, feed));
        }
        let mut results: Vec<(usize, io::Result<RegionOutput>)> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(i, r, fb, feed)| {
                    let registry = registry.clone();
                    let fs = fs.clone();
                    let cfg = cfg.clone();
                    scope.spawn(move || (i, run_supervised(r, fb, &registry, &fs, feed, &cfg)))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("region thread"));
            }
        });
        results.sort_by_key(|(i, _)| *i);
        for (_, res) in results {
            let out = res?;
            st.status = out.status();
            st.stdout.extend_from_slice(&out.stdout);
        }
    }
    Ok(())
}

/// The in-process threaded execution backend.
pub struct ThreadedBackend<'a> {
    /// Command implementations.
    pub registry: &'a Registry,
    /// Filesystem the plan reads and writes.
    pub fs: Arc<dyn Fs>,
    /// Bytes fed to the first region's boundary stdin.
    pub stdin: Vec<u8>,
    /// Executor tuning.
    pub cfg: ExecConfig,
}

impl Backend for ThreadedBackend<'_> {
    type Output = ProgramOutput;

    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&mut self, plan: &ExecutionPlan) -> io::Result<ProgramOutput> {
        run_program(
            plan,
            self.registry,
            self.fs.clone(),
            self.stdin.clone(),
            &self.cfg,
        )
    }
}

/// Compiles and runs a script against a filesystem; returns stdout.
///
/// This is the one-call API used by tests, examples, and benchmarks.
/// Compilation goes through the memoized
/// [`pash_core::compile::compile_cached`], so repeated runs of the
/// same script and configuration reuse the lowered plan.
pub fn run_script(
    src: &str,
    pash_cfg: &PashConfig,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    exec_cfg: &ExecConfig,
) -> io::Result<ProgramOutput> {
    let compiled = pash_core::compile::compile_cached(src, pash_cfg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    // The sequential fallback plan: the same source at width 1. Only
    // compiled when the supervisor could use it; compile_cached makes
    // repeat runs free.
    let fallback = if exec_cfg.supervisor.fallback && pash_cfg.width != 1 {
        pash_core::compile::compile_cached(
            src,
            &PashConfig {
                width: 1,
                ..pash_cfg.clone()
            },
        )
        .ok()
    } else {
        None
    };
    run_program_with_fallback(
        &compiled.plan,
        fallback.as_deref().map(|c| &c.plan),
        registry,
        fs,
        stdin,
        exec_cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_coreutils::fs::MemFs;

    fn fixture() -> (Registry, Arc<MemFs>) {
        let fs = Arc::new(MemFs::new());
        fs.add(
            "in.txt",
            b"Banana\napple\nCherry\napple\nbanana\nAPPLE\n".to_vec(),
        );
        (Registry::standard(), fs)
    }

    fn run(src: &str, width: usize) -> String {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width,
            ..Default::default()
        };
        let out = run_script(
            src,
            &cfg,
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn sequential_pipeline() {
        let out = run("cat in.txt | tr A-Z a-z | sort", 1);
        assert_eq!(out, "apple\napple\napple\nbanana\nbanana\ncherry\n");
    }

    #[test]
    fn profiling_hooks_record_bytes_and_derive_rates() {
        let (reg, fs) = fixture();
        let store = Arc::new(ProfileStore::in_memory());
        let ecfg = ExecConfig {
            profile: Some(store.clone()),
            ..Default::default()
        };
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let out = run_script(
            "cat in.txt | tr A-Z a-z | sort > s.txt",
            &cfg,
            &reg,
            fs.clone(),
            Vec::new(),
            &ecfg,
        )
        .expect("run");
        assert_eq!(out.status, 0);
        assert!(store.regions() >= 1, "region profile recorded");
        let rates = store.rates();
        let tr = rates.get("tr").expect("tr observed");
        assert!(tr.mb_per_s > 0.0 && tr.weight > 0.0);
        // tr is byte-preserving: measured ratio must be ~1.
        assert!((tr.out_ratio - 1.0).abs() < 0.01, "{tr:?}");
        // Profiling must not change the output.
        let plain = run("cat in.txt | tr A-Z a-z | sort", 1);
        let (reg2, fs2) = fixture();
        let profiled = run_script(
            "cat in.txt | tr A-Z a-z | sort",
            &cfg,
            &reg2,
            fs2,
            Vec::new(),
            &ecfg,
        )
        .expect("run");
        assert_eq!(String::from_utf8(profiled.stdout).expect("utf8"), plain);
    }

    #[test]
    fn parallel_matches_sequential_stateless() {
        let seq = run("cat in.txt | tr A-Z a-z | grep an", 1);
        for width in [2, 4, 8] {
            assert_eq!(run("cat in.txt | tr A-Z a-z | grep an", width), seq);
        }
    }

    #[test]
    fn parallel_matches_sequential_sort() {
        let seq = run("cat in.txt | tr A-Z a-z | sort", 1);
        for width in [2, 3, 8] {
            assert_eq!(run("cat in.txt | tr A-Z a-z | sort", width), seq);
        }
    }

    #[test]
    fn parallel_uniq_count() {
        let seq = run("cat in.txt | tr A-Z a-z | sort | uniq -c", 1);
        assert_eq!(run("cat in.txt | tr A-Z a-z | sort | uniq -c", 4), seq);
        assert!(seq.contains("3 apple"));
    }

    #[test]
    fn head_early_exit_terminates() {
        // The §5.2 dangling-FIFO scenario: head exits after one line;
        // upstream must die of broken pipes, not deadlock.
        let out = run("cat in.txt | sort -rn | head -n 1", 4);
        assert_eq!(out.lines().count(), 1);
    }

    #[test]
    fn file_output_lands_in_fs() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 4,
            ..Default::default()
        };
        run_script(
            "cat in.txt | tr A-Z a-z | sort > sorted.txt",
            &cfg,
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        let out = fs.read("sorted.txt").expect("output file");
        assert_eq!(out, b"apple\napple\napple\nbanana\nbanana\ncherry\n");
    }

    #[test]
    fn comm_with_static_dictionary() {
        let (reg, fs) = fixture();
        fs.add("dict.txt", b"apple\nbanana\n".to_vec());
        fs.add("words.txt", b"apple\ncherry\nzebra\n".to_vec());
        let cfg = PashConfig {
            width: 3,
            ..Default::default()
        };
        let out = run_script(
            "cat words.txt | comm -13 dict.txt -",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert_eq!(out.stdout, b"cherry\nzebra\n");
    }

    #[test]
    fn guards_respect_status() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 1,
            ..Default::default()
        };
        // grep finds nothing (status 1) so the second region is
        // skipped.
        let out = run_script(
            "grep zzz in.txt > miss.txt && cat in.txt",
            &cfg,
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert!(out.stdout.is_empty());
        // With `||` it runs.
        let out = run_script(
            "grep zzz in.txt > miss.txt || cat in.txt",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert!(!out.stdout.is_empty());
    }

    #[test]
    fn stdin_feeds_first_region() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 1,
            ..Default::default()
        };
        let out = run_script(
            "tr a-z A-Z",
            &cfg,
            &reg,
            fs,
            b"hello\n".to_vec(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert_eq!(out.stdout, b"HELLO\n");
    }

    #[test]
    fn assignments_are_noops_in_process() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let out = run_script(
            "f=in.txt\ncat $f | tr A-Z a-z | grep apple",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert_eq!(out.stdout, b"apple\napple\napple\n");
    }

    #[test]
    fn dynamic_shell_step_is_unsupported() {
        let (reg, fs) = fixture();
        let cfg = PashConfig::default();
        let res = run_script(
            "grep $UNDEFINED in.txt",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn missing_input_file_is_error() {
        let (reg, fs) = fixture();
        let cfg = PashConfig::default();
        let res = run_script(
            "cat nonexistent.txt | sort",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn tiny_pipes_still_correct() {
        // Squeeze everything through 32-byte pipes: heavy blocking,
        // same bytes.
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 4,
            ..Default::default()
        };
        let out = run_script(
            "cat in.txt | tr A-Z a-z | sort | uniq -c",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig {
                pipe_capacity: 32,
                ..Default::default()
            },
        )
        .expect("run");
        let s = String::from_utf8(out.stdout).expect("utf8");
        assert!(s.contains("3 apple"));
    }

    fn run_rr(src: &str, width: usize) -> String {
        let (reg, fs) = fixture();
        let out = run_script(
            src,
            &PashConfig::round_robin(width),
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn round_robin_matches_sequential_stateless() {
        let seq = run("cat in.txt | tr A-Z a-z | grep an", 1);
        for width in [2, 4, 8] {
            assert_eq!(run_rr("cat in.txt | tr A-Z a-z | grep an", width), seq);
        }
    }

    #[test]
    fn round_robin_matches_sequential_wc() {
        // Commutative aggregator: blocks flow raw, no reorder needed.
        let seq = run("cat in.txt | tr A-Z a-z | wc -l", 1);
        for width in [2, 4, 8] {
            assert_eq!(run_rr("cat in.txt | tr A-Z a-z | wc -l", width), seq);
        }
    }

    #[test]
    fn round_robin_order_sensitive_still_correct() {
        // sort falls back to segment splitting under the RR policy;
        // output must stay identical either way.
        let seq = run("cat in.txt | tr A-Z a-z | sort | uniq -c", 1);
        for width in [2, 4] {
            assert_eq!(
                run_rr("cat in.txt | tr A-Z a-z | sort | uniq -c", width),
                seq
            );
        }
    }

    #[test]
    fn round_robin_grep_miss_gates_guard() {
        // Satellite: a guarded miss must behave identically at any
        // width — the folded statuses keep the region status at 1.
        let (reg, fs) = fixture();
        for width in [1, 4] {
            let out = run_script(
                "cat in.txt | grep zzz > miss.txt && cat in.txt",
                &PashConfig::round_robin(width),
                &reg,
                fs.clone(),
                Vec::new(),
                &ExecConfig::default(),
            )
            .expect("run");
            assert!(out.stdout.is_empty(), "width {width}");
            assert_eq!(out.status, 1, "width {width}");
        }
    }

    #[test]
    fn parallel_regions_match_sequential() {
        // Two independent file-to-file pipelines form one wave; with
        // max_inflight > 1 they run concurrently, same results.
        let src = "grep apple in.txt > a.txt\ngrep -c an in.txt > b.txt";
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let mut runs = Vec::new();
        for max_inflight in [1usize, 4] {
            let (reg, fs) = fixture();
            let out = run_script(
                src,
                &cfg,
                &reg,
                fs.clone(),
                Vec::new(),
                &ExecConfig {
                    max_inflight,
                    ..Default::default()
                },
            )
            .expect("run");
            runs.push((
                out.status,
                fs.read("a.txt").expect("a.txt"),
                fs.read("b.txt").expect("b.txt"),
            ));
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0].1, b"apple\napple\n");
    }

    #[test]
    fn guard_still_sequences_under_inflight() {
        // `&&` after a miss must skip even when waves overlap.
        let (reg, fs) = fixture();
        let out = run_script(
            "grep zzz in.txt > miss.txt && cat in.txt",
            &PashConfig::default(),
            &reg,
            fs,
            Vec::new(),
            &ExecConfig {
                max_inflight: 8,
                ..Default::default()
            },
        )
        .expect("run");
        assert!(out.stdout.is_empty());
        assert_eq!(out.status, 1);
    }

    #[test]
    fn threaded_backend_trait_runs_plans() {
        let (reg, fs) = fixture();
        let compiled = pash_core::compile::compile(
            "cat in.txt | tr A-Z a-z | sort",
            &PashConfig {
                width: 3,
                ..Default::default()
            },
        )
        .expect("compile");
        let mut be = ThreadedBackend {
            registry: &reg,
            fs,
            stdin: Vec::new(),
            cfg: ExecConfig::default(),
        };
        assert_eq!(be.name(), "threads");
        let out = be.run(&compiled.plan).expect("run");
        assert_eq!(out.stdout, b"apple\napple\napple\nbanana\nbanana\ncherry\n");
    }
}
