//! The threaded plan executor.
//!
//! Runs a compiled [`ExecutionPlan`] in-process: one OS thread per
//! plan node, bounded [`crate::pipe`]s for edges. This engine is the
//! correctness vehicle of the reproduction — the parallel output must
//! be byte-identical to the sequential output, which the integration
//! suite checks for every benchmark script.
//!
//! The executor never inspects the compiler's DFG: everything it
//! needs (edge endpoint kinds, stream-argument roles, stdin routing,
//! output producers, guard structure) arrives resolved in the plan.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

use pash_core::compile::PashConfig;
use pash_core::plan::{
    Arg, Backend, ExecutionPlan, PlanNode, PlanNodeId, PlanOp, PlanStep, RegionPlan,
};

use pash_coreutils::fs::Fs;
use pash_coreutils::{CmdIo, Registry, SIGPIPE_STATUS};

use crate::agg::run_aggregator;
use crate::edge::MemEdges;
use crate::pipe::{MultiReader, DEFAULT_PIPE_CAPACITY};
use crate::relay::{run_relay, RelayMode};
use crate::split::split_general;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Pipe capacity in bytes (the kernel pipe buffer analogue).
    pub pipe_capacity: usize,
    /// Bounded-relay buffer, in 8 KiB chunks (the "blocking eager").
    pub blocking_relay_chunks: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            pipe_capacity: DEFAULT_PIPE_CAPACITY,
            blocking_relay_chunks: 8,
        }
    }
}

/// Result of executing one region plan.
#[derive(Debug)]
pub struct RegionOutput {
    /// Bytes the region wrote to its stdout edge(s).
    pub stdout: Vec<u8>,
    /// Exit status per node, in completion order.
    pub statuses: Vec<(PlanNodeId, i32)>,
    /// The region's overall status: that of its final output producer
    /// — the shell's `wait $pash_out_pids` reports exactly this, so
    /// every backend agrees even when an upstream node died of
    /// SIGPIPE *after* the producer finished.
    pub status: i32,
}

impl RegionOutput {
    /// The region's overall status (see the `status` field).
    pub fn status(&self) -> i32 {
        self.status
    }
}

/// A filesystem overlay that exposes in-flight streams as paths.
///
/// Stream-role arguments in a node's argv are rewritten to
/// `pash://stream/k`; the command opens them like files, each exactly
/// once.
struct StreamFs {
    base: Arc<dyn Fs>,
    streams: Mutex<HashMap<String, Box<dyn Read + Send>>>,
}

impl StreamFs {
    fn path_for(k: usize) -> String {
        format!("pash://stream/{k}")
    }
}

impl Fs for StreamFs {
    fn open(&self, path: &str) -> io::Result<Box<dyn Read + Send>> {
        if path.starts_with("pash://stream/") {
            return self
                .streams
                .lock()
                .expect("stream table lock")
                .remove(path)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("stream {path} already consumed"),
                    )
                });
        }
        self.base.open(path)
    }

    fn create(&self, path: &str) -> io::Result<Box<dyn Write + Send>> {
        self.base.create(path)
    }

    fn size(&self, path: &str) -> io::Result<u64> {
        self.base.size(path)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        self.base.list(dir)
    }
}

/// Executes one region plan.
///
/// `stdin` feeds the region's primary boundary pipe input (if any).
pub fn run_region(
    r: &RegionPlan,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
) -> io::Result<RegionOutput> {
    r.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let mut edges = MemEdges::wire(r, &fs, stdin, cfg.pipe_capacity)?;
    let stdout_buf = edges.stdout_handle();

    // Spawn one thread per node in plan (topological) order — order is
    // not semantically required (pipes synchronize) but makes teardown
    // deterministic in tests.
    let statuses: Arc<Mutex<Vec<(PlanNodeId, i32)>>> = Arc::new(Mutex::new(Vec::new()));
    let hard_error: Arc<Mutex<Option<io::Error>>> = Arc::new(Mutex::new(None));
    std::thread::scope(|scope| {
        for (id, node) in r.nodes.iter().enumerate() {
            let ins = edges.take_inputs(node);
            let outs = edges.take_outputs(node);
            let registry = registry.clone();
            let fs = fs.clone();
            let statuses = statuses.clone();
            let hard_error = hard_error.clone();
            let ecfg = cfg.clone();
            scope.spawn(move || {
                let res = run_node(node, ins, outs, &registry, fs, &ecfg);
                match res {
                    Ok(s) => statuses.lock().expect("status lock").push((id, s)),
                    Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {
                        // SIGPIPE-style death: normal early-exit
                        // teardown, not an error.
                        statuses
                            .lock()
                            .expect("status lock")
                            .push((id, SIGPIPE_STATUS));
                    }
                    Err(e) => {
                        statuses.lock().expect("status lock").push((id, 127));
                        hard_error.lock().expect("error lock").get_or_insert(e);
                    }
                }
            });
        }
    });
    if let Some(e) = hard_error.lock().expect("error lock").take() {
        return Err(e);
    }
    let stdout = std::mem::take(&mut *stdout_buf.lock().expect("stdout lock"));
    let statuses = std::mem::take(&mut *statuses.lock().expect("status lock"));
    // The shell waits on `$pash_out_pids` and keeps the last wait's
    // status: the final output producer in node order.
    let status = r
        .output_producers()
        .last()
        .and_then(|id| statuses.iter().rev().find(|(n, _)| *n == id))
        .map(|(_, s)| *s)
        .unwrap_or(0);
    Ok(RegionOutput {
        stdout,
        statuses,
        status,
    })
}

/// Executes one node's work on the current thread.
fn run_node(
    node: &PlanNode,
    mut ins: Vec<Box<dyn Read + Send>>,
    mut outs: Vec<Box<dyn Write + Send>>,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    cfg: &ExecConfig,
) -> io::Result<i32> {
    match &node.op {
        PlanOp::Exec { argv } => {
            // Stream-role args become virtual stream paths; the
            // remaining inputs feed stdin in plan order.
            let mut slots: Vec<Option<Box<dyn Read + Send>>> = ins.drain(..).map(Some).collect();
            let mut stream_table: HashMap<String, Box<dyn Read + Send>> = HashMap::new();
            let mut final_argv: Vec<String> = Vec::with_capacity(argv.len());
            for a in argv {
                match a {
                    Arg::Lit(w) => final_argv.push(w.clone()),
                    Arg::Stream(k) => {
                        if let Some(r) = slots.get_mut(*k).and_then(|s| s.take()) {
                            stream_table.insert(StreamFs::path_for(*k), r);
                        }
                        final_argv.push(StreamFs::path_for(*k));
                    }
                }
            }
            let stdin_sources: Vec<Box<dyn Read + Send>> = node
                .stdin_inputs
                .iter()
                .filter_map(|&k| slots.get_mut(k).and_then(|s| s.take()))
                .collect();
            let (name, args) = final_argv
                .split_first()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty argv"))?;
            let cmd = registry.get(name).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("{name}: not found"))
            })?;
            let stream_fs = Arc::new(StreamFs {
                base: fs,
                streams: Mutex::new(stream_table),
            });
            let mut stdin = io::BufReader::new(MultiReader::new(stdin_sources));
            let mut stderr = io::sink();
            let mut out = outs.pop().expect("command has one output");
            let mut cio = CmdIo {
                stdin: &mut stdin,
                stdout: &mut out,
                stderr: &mut stderr,
                fs: stream_fs,
                registry,
            };
            let status = cmd.run(&args.to_vec(), &mut cio)?;
            // Flush the edge buffer while errors can still be
            // reported; the drop-time flush swallows them.
            out.flush()?;
            Ok(status)
        }
        PlanOp::Cat => {
            let mut out = outs.pop().expect("cat has one output");
            for mut r in ins {
                let mut buf = [0u8; 64 * 1024];
                loop {
                    let n = r.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    out.write_all(&buf[..n])?;
                }
            }
            out.flush()?;
            Ok(0)
        }
        PlanOp::Relay { blocking } => {
            let input = ins.pop().expect("relay has one input");
            let mut out = outs.pop().expect("relay has one output");
            let mode = if *blocking {
                RelayMode::Blocking(cfg.blocking_relay_chunks)
            } else {
                RelayMode::Full
            };
            run_relay(input, &mut out, mode)?;
            out.flush()?;
            Ok(0)
        }
        PlanOp::Split { .. } => {
            // The sized variant needs a file-backed input; on a pipe
            // both behave identically for correctness (the performance
            // difference is the simulator's concern).
            let input = ins.pop().expect("split has one input");
            let mut r = io::BufReader::new(input);
            split_general(&mut r, &mut outs)?;
            for out in outs.iter_mut() {
                // Same discipline as the split itself: a chunk whose
                // consumer is gone is abandoned, not fatal.
                match out.flush() {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(0)
        }
        PlanOp::Aggregate { argv } => {
            let mut out = outs.pop().expect("aggregate has one output");
            let status = run_aggregator(argv, ins, &mut out, registry, fs)?;
            out.flush()?;
            Ok(status)
        }
    }
}

/// Result of executing a whole plan.
#[derive(Debug)]
pub struct ProgramOutput {
    /// Bytes written to stdout across all regions.
    pub stdout: Vec<u8>,
    /// Status of the last executed step.
    pub status: i32,
}

/// Executes a plan step by step.
///
/// `Shell` steps are supported only when they are no-ops for the data
/// path (assignments, comments): the front-end already folded their
/// effect into the compile-time environment and lowering marked them
/// `data_noop`. Anything else is an error — the hermetic executor
/// does not run arbitrary shell.
pub fn run_program(
    plan: &ExecutionPlan,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
) -> io::Result<ProgramOutput> {
    let mut stdout = Vec::new();
    let mut status = 0;
    let mut stdin = Some(stdin);
    let mut skip_next = false;
    for step in &plan.steps {
        match step {
            PlanStep::Guard(cond) => {
                skip_next = !cond.admits(status);
            }
            PlanStep::Region(r) => {
                if std::mem::take(&mut skip_next) {
                    continue;
                }
                // Only a region that consumes stdin takes the bytes;
                // the emitted script keeps real stdin on a saved fd,
                // so a later reader still sees it.
                let feed = if r.reads_stdin() {
                    stdin.take().unwrap_or_default()
                } else {
                    Vec::new()
                };
                let out = run_region(r, registry, fs.clone(), feed, cfg)?;
                status = out.status();
                stdout.extend_from_slice(&out.stdout);
            }
            PlanStep::Shell { text, data_noop } => {
                if std::mem::take(&mut skip_next) {
                    continue;
                }
                if !data_noop {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        format!("cannot execute shell step in-process: `{text}`"),
                    ));
                }
                status = 0;
            }
        }
    }
    Ok(ProgramOutput { stdout, status })
}

/// The in-process threaded execution backend.
pub struct ThreadedBackend<'a> {
    /// Command implementations.
    pub registry: &'a Registry,
    /// Filesystem the plan reads and writes.
    pub fs: Arc<dyn Fs>,
    /// Bytes fed to the first region's boundary stdin.
    pub stdin: Vec<u8>,
    /// Executor tuning.
    pub cfg: ExecConfig,
}

impl Backend for ThreadedBackend<'_> {
    type Output = ProgramOutput;

    fn name(&self) -> &'static str {
        "threads"
    }

    fn run(&mut self, plan: &ExecutionPlan) -> io::Result<ProgramOutput> {
        run_program(
            plan,
            self.registry,
            self.fs.clone(),
            self.stdin.clone(),
            &self.cfg,
        )
    }
}

/// Compiles and runs a script against a filesystem; returns stdout.
///
/// This is the one-call API used by tests, examples, and benchmarks.
/// Compilation goes through the memoized
/// [`pash_core::compile::compile_cached`], so repeated runs of the
/// same script and configuration reuse the lowered plan.
pub fn run_script(
    src: &str,
    pash_cfg: &PashConfig,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    exec_cfg: &ExecConfig,
) -> io::Result<ProgramOutput> {
    let compiled = pash_core::compile::compile_cached(src, pash_cfg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    run_program(&compiled.plan, registry, fs, stdin, exec_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_coreutils::fs::MemFs;

    fn fixture() -> (Registry, Arc<MemFs>) {
        let fs = Arc::new(MemFs::new());
        fs.add(
            "in.txt",
            b"Banana\napple\nCherry\napple\nbanana\nAPPLE\n".to_vec(),
        );
        (Registry::standard(), fs)
    }

    fn run(src: &str, width: usize) -> String {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width,
            ..Default::default()
        };
        let out = run_script(
            src,
            &cfg,
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        String::from_utf8(out.stdout).expect("utf8")
    }

    #[test]
    fn sequential_pipeline() {
        let out = run("cat in.txt | tr A-Z a-z | sort", 1);
        assert_eq!(out, "apple\napple\napple\nbanana\nbanana\ncherry\n");
    }

    #[test]
    fn parallel_matches_sequential_stateless() {
        let seq = run("cat in.txt | tr A-Z a-z | grep an", 1);
        for width in [2, 4, 8] {
            assert_eq!(run("cat in.txt | tr A-Z a-z | grep an", width), seq);
        }
    }

    #[test]
    fn parallel_matches_sequential_sort() {
        let seq = run("cat in.txt | tr A-Z a-z | sort", 1);
        for width in [2, 3, 8] {
            assert_eq!(run("cat in.txt | tr A-Z a-z | sort", width), seq);
        }
    }

    #[test]
    fn parallel_uniq_count() {
        let seq = run("cat in.txt | tr A-Z a-z | sort | uniq -c", 1);
        assert_eq!(run("cat in.txt | tr A-Z a-z | sort | uniq -c", 4), seq);
        assert!(seq.contains("3 apple"));
    }

    #[test]
    fn head_early_exit_terminates() {
        // The §5.2 dangling-FIFO scenario: head exits after one line;
        // upstream must die of broken pipes, not deadlock.
        let out = run("cat in.txt | sort -rn | head -n 1", 4);
        assert_eq!(out.lines().count(), 1);
    }

    #[test]
    fn file_output_lands_in_fs() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 4,
            ..Default::default()
        };
        run_script(
            "cat in.txt | tr A-Z a-z | sort > sorted.txt",
            &cfg,
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        let out = fs.read("sorted.txt").expect("output file");
        assert_eq!(out, b"apple\napple\napple\nbanana\nbanana\ncherry\n");
    }

    #[test]
    fn comm_with_static_dictionary() {
        let (reg, fs) = fixture();
        fs.add("dict.txt", b"apple\nbanana\n".to_vec());
        fs.add("words.txt", b"apple\ncherry\nzebra\n".to_vec());
        let cfg = PashConfig {
            width: 3,
            ..Default::default()
        };
        let out = run_script(
            "cat words.txt | comm -13 dict.txt -",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert_eq!(out.stdout, b"cherry\nzebra\n");
    }

    #[test]
    fn guards_respect_status() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 1,
            ..Default::default()
        };
        // grep finds nothing (status 1) so the second region is
        // skipped.
        let out = run_script(
            "grep zzz in.txt > miss.txt && cat in.txt",
            &cfg,
            &reg,
            fs.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert!(out.stdout.is_empty());
        // With `||` it runs.
        let out = run_script(
            "grep zzz in.txt > miss.txt || cat in.txt",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert!(!out.stdout.is_empty());
    }

    #[test]
    fn stdin_feeds_first_region() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 1,
            ..Default::default()
        };
        let out = run_script(
            "tr a-z A-Z",
            &cfg,
            &reg,
            fs,
            b"hello\n".to_vec(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert_eq!(out.stdout, b"HELLO\n");
    }

    #[test]
    fn assignments_are_noops_in_process() {
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 2,
            ..Default::default()
        };
        let out = run_script(
            "f=in.txt\ncat $f | tr A-Z a-z | grep apple",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("run");
        assert_eq!(out.stdout, b"apple\napple\napple\n");
    }

    #[test]
    fn dynamic_shell_step_is_unsupported() {
        let (reg, fs) = fixture();
        let cfg = PashConfig::default();
        let res = run_script(
            "grep $UNDEFINED in.txt",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn missing_input_file_is_error() {
        let (reg, fs) = fixture();
        let cfg = PashConfig::default();
        let res = run_script(
            "cat nonexistent.txt | sort",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig::default(),
        );
        assert!(res.is_err());
    }

    #[test]
    fn tiny_pipes_still_correct() {
        // Squeeze everything through 32-byte pipes: heavy blocking,
        // same bytes.
        let (reg, fs) = fixture();
        let cfg = PashConfig {
            width: 4,
            ..Default::default()
        };
        let out = run_script(
            "cat in.txt | tr A-Z a-z | sort | uniq -c",
            &cfg,
            &reg,
            fs,
            Vec::new(),
            &ExecConfig {
                pipe_capacity: 32,
                ..Default::default()
            },
        )
        .expect("run");
        let s = String::from_utf8(out.stdout).expect("utf8");
        assert!(s.contains("3 apple"));
    }

    #[test]
    fn threaded_backend_trait_runs_plans() {
        let (reg, fs) = fixture();
        let compiled = pash_core::compile::compile(
            "cat in.txt | tr A-Z a-z | sort",
            &PashConfig {
                width: 3,
                ..Default::default()
            },
        )
        .expect("compile");
        let mut be = ThreadedBackend {
            registry: &reg,
            fs,
            stdin: Vec::new(),
            cfg: ExecConfig::default(),
        };
        assert_eq!(be.name(), "threads");
        let out = be.run(&compiled.plan).expect("run");
        assert_eq!(out.stdout, b"apple\napple\napple\nbanana\nbanana\ncherry\n");
    }
}
