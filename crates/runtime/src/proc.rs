//! The OS-process backend: a lowered [`ExecutionPlan`] run as real
//! child processes over named FIFOs — the paper's actual deployment
//! story (§5.2), without going through emitted shell text.
//!
//! Each plan node becomes one child of the multi-call binaries
//! (`pashc` for coreutils nodes, `pash-rt` for runtime primitives),
//! with its argv rendered from the same
//! [`pash_core::plan::SpawnSpec`] the shell emitter uses. Edge
//! wiring comes from the runtime I/O layer ([`crate::edge`]):
//!
//! * internal pipe edges are named FIFOs in a scratch directory
//!   ([`crate::edge::FifoDir`]); children open their own endpoints
//!   (via argv naming or the multicall's `--stdin`/`--stdout`
//!   redirections), so the parent never blocks in a FIFO open;
//! * file edges resolve against the backend's root directory, which
//!   is every child's working directory;
//! * segment edges spawn a `pash-rt fileseg` producer whose stdout
//!   pipes straight into the consumer;
//! * boundary stdin/stdout edges are anonymous pipes fed/drained by
//!   parent threads.
//!
//! Teardown matches the emitted script: wait on the region's output
//! producers, deliver `SIGPIPE` to everything still running (the
//! dangling-FIFO fix), then reap — escalating to `SIGKILL` after a
//! grace period so a wedged child cannot hang the backend.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pash_core::plan::{
    fold_statuses, Backend, EndpointKind, ExecutionPlan, PlanEdgeId, PlanNodeId, PlanStep,
    RegionPlan, SpawnBin, SpawnWord,
};

use crate::edge::FifoDir;
use crate::exec::{ProgramOutput, RegionOutput};
use crate::fault::{ArmedFault, ExecError, FaultKind, INFRA_STATUS};
use crate::profile::{ProfileStore, RegionProfile};
use crate::supervise::{supervise_region, SupervisorSettings};

/// Exit status of a child killed by `SIGABRT` (128 + 6): how an
/// injected in-child worker death ([`crate::fault::FaultMode::Die`])
/// reports itself. Together with [`INFRA_STATUS`] these are the two
/// reaped statuses the backend classifies as infrastructure failures
/// rather than command verdicts.
const ABORT_STATUS: i32 = 134;

/// Process-backend configuration.
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// The coreutils multi-call binary (`pashc`).
    pub pashc: PathBuf,
    /// The runtime multi-call binary (`pash-rt`).
    pub pash_rt: PathBuf,
    /// Where FIFO scratch directories are created (default: the
    /// system temp directory).
    pub scratch: Option<PathBuf>,
    /// How long to wait after `SIGPIPE` before escalating teardown to
    /// `SIGKILL`.
    pub kill_grace: Duration,
    /// Maximum number of independent regions in flight at once. The
    /// default of 1 executes steps strictly in plan order; larger
    /// values let non-conflicting regions (per
    /// [`ExecutionPlan::parallel_waves`]) overlap.
    pub max_inflight: usize,
    /// The execution supervisor: retries, region deadlines, fault
    /// injection, sequential fallback (see [`crate::supervise`]).
    pub supervisor: SupervisorSettings,
    /// When set, successful region attempts record what the parent
    /// can observe from the process boundary — per-node spawn-to-reap
    /// wall time, plus bytes at file/stdin/stdout endpoints (FIFO
    /// interiors are invisible to the parent and stay zero; the rate
    /// index skips zero-byte nodes). See [`crate::profile`].
    pub profile: Option<Arc<ProfileStore>>,
}

impl ProcConfig {
    /// Locates the multi-call binaries: `$PASHC`/`$PASH_RT` if set,
    /// otherwise next to the current executable (walking up out of
    /// `target/<profile>/deps` for test binaries).
    pub fn locate() -> io::Result<ProcConfig> {
        Ok(ProcConfig {
            pashc: locate_bin("pashc", "PASHC")?,
            pash_rt: locate_bin("pash-rt", "PASH_RT")?,
            scratch: None,
            kill_grace: Duration::from_secs(2),
            max_inflight: 1,
            supervisor: SupervisorSettings::default(),
            profile: None,
        })
    }
}

/// Finds a sibling binary of the running executable (or honours the
/// role's environment override, the same contract emitted scripts
/// use).
pub fn locate_bin(name: &str, env_var: &str) -> io::Result<PathBuf> {
    if let Some(p) = std::env::var_os(env_var) {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe.parent();
    for _ in 0..3 {
        let Some(d) = dir else { break };
        let candidate = d.join(name);
        if candidate.is_file() {
            return Ok(candidate);
        }
        dir = d.parent();
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("cannot locate the `{name}` binary: set ${env_var} or build the workspace bins"),
    ))
}

/// The `processes` execution backend.
pub struct ProcessBackend {
    /// Binary locations and teardown tuning.
    pub cfg: ProcConfig,
    /// Root directory: every child's cwd, against which the plan's
    /// file edges resolve.
    pub root: PathBuf,
    /// Bytes fed to the first region's boundary stdin.
    pub stdin: Vec<u8>,
}

impl Backend for ProcessBackend {
    type Output = ProgramOutput;

    fn name(&self) -> &'static str {
        "processes"
    }

    fn run(&mut self, plan: &ExecutionPlan) -> io::Result<ProgramOutput> {
        // Taken, not cloned: stdin can be large, and a backend runs
        // its plan once.
        run_plan(plan, &self.cfg, &self.root, std::mem::take(&mut self.stdin))
    }
}

/// Maps a reaped child status onto the shell convention (`128 + sig`
/// for signal deaths, so SIGPIPE reports [`pash_coreutils::SIGPIPE_STATUS`]).
fn exit_code(st: std::process::ExitStatus) -> i32 {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = st.signal() {
            return 128 + sig;
        }
    }
    st.code().unwrap_or(1)
}

/// Sends `SIGPIPE` to a process (teardown parity with the emitted
/// script's `kill -s PIPE`). Declared directly: the workspace vendors
/// no `libc`, but `std` already links it.
#[cfg(unix)]
fn kill_pipe(pid: u32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGPIPE: i32 = 13;
    unsafe {
        kill(pid as i32, SIGPIPE);
    }
}

#[cfg(not(unix))]
fn kill_pipe(_pid: u32) {}

/// Executes a whole plan, step by step (mirrors
/// [`crate::exec::run_program`]'s guard and stdin threading).
///
/// Unlike the hermetic threaded executor, non-no-op `Shell` steps run
/// for real under `/bin/sh -c` in the backend's root — the same text
/// the shell backend would inline into its script.
pub fn run_plan(
    plan: &ExecutionPlan,
    cfg: &ProcConfig,
    root: &Path,
    stdin: Vec<u8>,
) -> io::Result<ProgramOutput> {
    run_plan_with_fallback(plan, None, cfg, root, stdin)
}

/// Two plans compiled from the same source at different widths have
/// the same step skeleton; anything else disqualifies the fallback.
fn plans_align(a: &ExecutionPlan, b: &ExecutionPlan) -> bool {
    a.steps.len() == b.steps.len()
        && a.steps.iter().zip(&b.steps).all(|(x, y)| match (x, y) {
            (PlanStep::Region(_), PlanStep::Region(_)) => true,
            (PlanStep::Guard(g), PlanStep::Guard(h)) => g == h,
            (PlanStep::Shell { text: t, .. }, PlanStep::Shell { text: u, .. }) => t == u,
            _ => false,
        })
}

/// [`run_plan`] with an optional width-1 fallback plan for the
/// supervisor's graceful-degradation path (see
/// [`crate::exec::run_program_with_fallback`] for the contract).
pub fn run_plan_with_fallback(
    plan: &ExecutionPlan,
    fallback: Option<&ExecutionPlan>,
    cfg: &ProcConfig,
    root: &Path,
    stdin: Vec<u8>,
) -> io::Result<ProgramOutput> {
    // Fresh total-retry budget per program run (see
    // `SupervisorSettings::fresh_run`).
    let cfg = &ProcConfig {
        supervisor: cfg.supervisor.fresh_run(),
        ..cfg.clone()
    };
    let fallback = fallback.filter(|f| plans_align(plan, f));
    let fb_step = |i: usize| -> Option<&RegionPlan> {
        match fallback.map(|f| &f.steps[i]) {
            Some(PlanStep::Region(r)) => Some(r),
            _ => None,
        }
    };
    let mut st = PlanState {
        stdout: Vec::new(),
        status: 0,
        stdin: Some(stdin),
        skip_next: false,
    };
    if cfg.max_inflight > 1 {
        for wave in plan.parallel_waves() {
            if wave.len() > 1 && !st.skip_next {
                run_plan_wave(plan, fallback, &wave, cfg, root, &mut st)?;
            } else {
                for &i in &wave {
                    run_plan_step(&plan.steps[i], fb_step(i), cfg, root, &mut st)?;
                }
            }
        }
    } else {
        for (i, step) in plan.steps.iter().enumerate() {
            run_plan_step(step, fb_step(i), cfg, root, &mut st)?;
        }
    }
    Ok(ProgramOutput {
        stdout: st.stdout,
        status: st.status,
    })
}

/// Runs one region under the supervisor (retries with backoff,
/// per-attempt fault arm, sequential fallback) — the process-tree
/// sibling of the threaded executor's `run_supervised`.
fn run_supervised(
    r: &RegionPlan,
    fallback: Option<&RegionPlan>,
    cfg: &ProcConfig,
    root: &Path,
    feed: Vec<u8>,
) -> io::Result<RegionOutput> {
    let sup = &cfg.supervisor;
    let mut attempt = |armed: Option<ArmedFault>| {
        run_region_attempt(r, cfg, root, feed.clone(), armed.as_ref(), Some(sup))
    };
    let out = match fallback {
        Some(fb) => supervise_region(
            r,
            sup,
            &mut attempt,
            Some(|| {
                // The sequential reference run: no injection, no deadline.
                run_region_attempt(fb, cfg, root, feed.clone(), None, None)
            }),
        ),
        None => supervise_region(
            r,
            sup,
            &mut attempt,
            None::<fn() -> Result<RegionOutput, ExecError>>,
        ),
    };
    out.map_err(io::Error::from)
}

/// Mutable interpreter state threaded through steps.
struct PlanState {
    stdout: Vec<u8>,
    status: i32,
    stdin: Option<Vec<u8>>,
    skip_next: bool,
}

/// Executes one plan step sequentially.
fn run_plan_step(
    step: &PlanStep,
    fallback: Option<&RegionPlan>,
    cfg: &ProcConfig,
    root: &Path,
    st: &mut PlanState,
) -> io::Result<()> {
    match step {
        PlanStep::Guard(cond) => {
            st.skip_next = !cond.admits(st.status);
        }
        PlanStep::Region(r) => {
            if std::mem::take(&mut st.skip_next) {
                return Ok(());
            }
            // Only a stdin-consuming region takes the bytes; the
            // emitted script keeps real stdin on a saved fd, so a
            // later reader still sees it.
            let feed = if r.reads_stdin() {
                st.stdin.take().unwrap_or_default()
            } else {
                Vec::new()
            };
            let out = run_supervised(r, fallback, cfg, root, feed)?;
            st.status = out.status();
            st.stdout.extend_from_slice(&out.stdout);
        }
        PlanStep::Shell { text, data_noop } => {
            if std::mem::take(&mut st.skip_next) {
                return Ok(());
            }
            if *data_noop {
                // Folded into the compile-time environment already.
                st.status = 0;
                return Ok(());
            }
            let out = Command::new("/bin/sh")
                .arg("-c")
                .arg(text)
                .current_dir(root)
                .stdin(Stdio::null())
                .output()?;
            st.stdout.extend_from_slice(&out.stdout);
            io::stderr().write_all(&out.stderr)?;
            st.status = exit_code(out.status);
        }
    }
    Ok(())
}

/// Runs a wave of mutually independent regions as concurrent process
/// trees, at most `max_inflight` at a time, applying outputs and the
/// final status in step order (see
/// [`crate::exec`]'s threaded equivalent for the ordering argument).
fn run_plan_wave(
    plan: &ExecutionPlan,
    fallback: Option<&ExecutionPlan>,
    wave: &[usize],
    cfg: &ProcConfig,
    root: &Path,
    st: &mut PlanState,
) -> io::Result<()> {
    for chunk in wave.chunks(cfg.max_inflight.max(1)) {
        let mut jobs: Vec<(usize, &RegionPlan, Option<&RegionPlan>, Vec<u8>)> =
            Vec::with_capacity(chunk.len());
        for &i in chunk {
            let PlanStep::Region(r) = &plan.steps[i] else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "non-region step in a parallel wave",
                ));
            };
            let fb = match fallback.map(|f| &f.steps[i]) {
                Some(PlanStep::Region(fr)) => Some(fr),
                _ => None,
            };
            let feed = if r.reads_stdin() {
                st.stdin.take().unwrap_or_default()
            } else {
                Vec::new()
            };
            jobs.push((i, r, fb, feed));
        }
        let mut results: Vec<(usize, io::Result<RegionOutput>)> = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(i, r, fb, feed)| {
                    let cfg = cfg.clone();
                    scope.spawn(move || (i, run_supervised(r, fb, &cfg, root, feed)))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("region thread"));
            }
        });
        results.sort_by_key(|(i, _)| *i);
        for (_, res) in results {
            let out = res?;
            st.status = out.status();
            st.stdout.extend_from_slice(&out.stdout);
        }
    }
    Ok(())
}

/// The name a plan edge gets when it appears in a child's argv.
fn edge_name(r: &RegionPlan, fifos: &FifoDir, e: PlanEdgeId) -> io::Result<std::ffi::OsString> {
    match &r.edges[e].kind {
        EndpointKind::Pipe => Ok(fifos
            .path(e)
            .expect("pipe edge has a fifo")
            .as_os_str()
            .to_os_string()),
        // Relative: children run with the backend root as cwd.
        EndpointKind::InputFile(p) | EndpointKind::OutputFile(p) => Ok(p.into()),
        other => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("edge kind {other:?} cannot appear in argument position"),
        )),
    }
}

/// Executes one region as a process tree; `stdin` feeds the primary
/// boundary input. A single unsupervised attempt; retries, deadlines,
/// and fallback live in [`run_plan`]'s per-step supervision.
pub fn run_region(
    r: &RegionPlan,
    cfg: &ProcConfig,
    root: &Path,
    stdin: Vec<u8>,
) -> io::Result<RegionOutput> {
    run_region_attempt(r, cfg, root, stdin, None, None).map_err(io::Error::from)
}

/// One attempt at a region, with optional fault injection and an
/// optional deadline (taken from `settings`). Parent-side faults
/// (spawn failure/delay, mkfifo failure) are injected here; stream
/// faults travel to the armed child via the `PASH_FAULT` environment
/// variable, which the multicall wraps around its stdout.
fn run_region_attempt(
    r: &RegionPlan,
    cfg: &ProcConfig,
    root: &Path,
    stdin: Vec<u8>,
    fault: Option<&ArmedFault>,
    settings: Option<&SupervisorSettings>,
) -> Result<RegionOutput, ExecError> {
    r.validate()
        .map_err(|e| ExecError::fatal("plan", io::Error::new(io::ErrorKind::InvalidInput, e)))?;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let scratch = cfg.scratch.clone().unwrap_or_else(std::env::temp_dir);
    let tag = format!("r{}", SEQ.fetch_add(1, Ordering::Relaxed));
    let fifos = FifoDir::create_with(r, &scratch, &tag, fault)
        .map_err(|e| ExecError::classify("edge wiring", e))?;
    let deadline = settings
        .and_then(|s| s.region_deadline)
        .map(|d| Instant::now() + d);

    let mut children: Vec<Child> = Vec::with_capacity(r.nodes.len());
    let mut helpers: Vec<Child> = Vec::new();
    let result = spawn_and_reap(
        r,
        cfg,
        root,
        stdin,
        &fifos,
        fault,
        deadline,
        &mut children,
        &mut helpers,
    );
    if result.is_err() {
        // A failure partway through spawning (a missing binary, an
        // unreadable input) must not leak the children already
        // spawned: blocked in a FIFO open, they would outlive the
        // FIFOs' unlink forever. SIGKILL — not PIPE, which an open(2)
        // does not observe — and reap everything still running. A
        // deadline expiry lands here too: this is the escalation from
        // `kill_grace` to an unconditional SIGKILL of the region.
        for child in children.iter_mut().chain(helpers.iter_mut()) {
            if !matches!(child.try_wait(), Ok(Some(_))) {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        if let (Some(s), Err(e)) = (settings, &result) {
            if e.is_deadline() {
                s.note_deadline_kill();
            }
        }
    }
    result
}

/// Waits for one child, polling so an optional region deadline can
/// interrupt the wait. Expiry reports a transient `TimedOut` error —
/// the caller's error path SIGKILLs the whole region.
fn wait_deadline(
    child: &mut Child,
    id: PlanNodeId,
    deadline: Option<Instant>,
) -> Result<i32, ExecError> {
    loop {
        if let Some(st) = child
            .try_wait()
            .map_err(|e| ExecError::classify("wait", e).at_node(id))?
        {
            return Ok(exit_code(st));
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                return Err(ExecError::transient(
                    "region deadline",
                    io::Error::new(io::ErrorKind::TimedOut, "region deadline exceeded"),
                )
                .at_node(id));
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The fallible body of [`run_region`]: spawns every node, waits on
/// the output producers, and tears the region down. Children are
/// pushed into the caller's vectors as they spawn, so an early `?`
/// return leaves the caller holding everything that needs killing.
#[allow(clippy::too_many_arguments)]
fn spawn_and_reap(
    r: &RegionPlan,
    cfg: &ProcConfig,
    root: &Path,
    stdin: Vec<u8>,
    fifos: &FifoDir,
    fault: Option<&ArmedFault>,
    deadline: Option<Instant>,
    children: &mut Vec<Child>,
    helpers: &mut Vec<Child>,
) -> Result<RegionOutput, ExecError> {
    let mut feeders = Vec::new();
    let mut drains: Vec<(PlanNodeId, std::thread::JoinHandle<Vec<u8>>)> = Vec::new();
    let mut stdin = Some(stdin);
    let profile = cfg.profile.as_ref().map(|_| RegionProfile::for_region(r));
    // Spawn instants (busy = spawn-to-reap wall) and output files to
    // stat after completion — the byte signals a parent can see.
    let mut spawned_at: Vec<Instant> = Vec::with_capacity(r.nodes.len());
    let mut out_files: Vec<(PlanNodeId, PathBuf)> = Vec::new();

    for (id, node) in r.nodes.iter().enumerate() {
        // Parent-side spawn faults for the armed node.
        if let Some(a) = fault.filter(|a| a.node == Some(id)) {
            match a.kind {
                FaultKind::SpawnFail => {
                    return Err(ExecError::transient(
                        "spawn",
                        io::Error::new(io::ErrorKind::Interrupted, "injected spawn failure"),
                    )
                    .at_node(id));
                }
                FaultKind::SpawnDelay => std::thread::sleep(a.delay),
                _ => {}
            }
        }
        let spec = node.spawn_spec();
        let bin = match spec.bin {
            SpawnBin::Coreutils => &cfg.pashc,
            SpawnBin::Runtime => &cfg.pash_rt,
        };
        let mut cmd = Command::new(bin);
        cmd.current_dir(root);
        // Stream faults ride to the armed child in the environment;
        // the multicall wraps its stdout in the corresponding
        // FaultyWriter (see `cli.rs`). Everything else must run clean.
        if let Some(spec) = fault
            .filter(|a| a.node == Some(id))
            .and_then(|a| a.env_spec())
        {
            cmd.env("PASH_FAULT", spec);
        }

        // Standard-input routing. FIFO endpoints are passed by path
        // (`--stdin`) and opened by the child itself — a parent-side
        // open would block until the peer spawns.
        let mut feed: Option<Vec<u8>> = None;
        match spec.stdin_input.map(|k| node.inputs[k]) {
            None => {
                cmd.stdin(Stdio::null());
            }
            Some(e) => match &r.edges[e].kind {
                EndpointKind::Pipe => {
                    cmd.arg("--stdin")
                        .arg(fifos.path(e).expect("pipe edge has a fifo"));
                    cmd.stdin(Stdio::null());
                }
                EndpointKind::InputFile(p) => {
                    let f = std::fs::File::open(root.join(p))
                        .map_err(|e| ExecError::classify("open input file", e).at_node(id))?;
                    if let Some(prof) = &profile {
                        if let Ok(md) = f.metadata() {
                            prof.add_in(id, md.len());
                        }
                    }
                    cmd.stdin(Stdio::from(f));
                }
                EndpointKind::InputSegment { path, part, of } => {
                    // A fileseg producer pipes straight into the node,
                    // like the emitted `$PASH_RT fileseg … |` prefix.
                    let mut h = Command::new(&cfg.pash_rt);
                    h.current_dir(root)
                        .arg("fileseg")
                        .arg(path)
                        .arg(part.to_string())
                        .arg(of.to_string())
                        .stdin(Stdio::null())
                        .stdout(Stdio::piped());
                    let mut helper = h
                        .spawn()
                        .map_err(|e| ExecError::classify("spawn fileseg helper", e).at_node(id))?;
                    let out = helper.stdout.take().ok_or_else(|| {
                        ExecError::fatal(
                            "spawn fileseg helper",
                            io::Error::other("piped helper stdout missing"),
                        )
                        .at_node(id)
                    })?;
                    cmd.stdin(Stdio::from(out));
                    helpers.push(helper);
                }
                EndpointKind::StdinPipe { primary: true } => {
                    cmd.stdin(Stdio::piped());
                    feed = Some(stdin.take().unwrap_or_default());
                }
                // Non-primary boundary inputs read empty streams.
                _ => {
                    cmd.stdin(Stdio::null());
                }
            },
        }

        // Standard-output routing.
        let mut drain = false;
        match spec.stdout_output.map(|j| node.outputs[j]) {
            None => {
                // Split nodes name their outputs in argv.
                cmd.stdout(Stdio::null());
            }
            Some(e) => match &r.edges[e].kind {
                EndpointKind::Pipe => {
                    cmd.arg("--stdout")
                        .arg(fifos.path(e).expect("pipe edge has a fifo"));
                    cmd.stdout(Stdio::null());
                }
                EndpointKind::OutputFile(p) => {
                    let path = root.join(p);
                    if profile.is_some() {
                        out_files.push((id, path.clone()));
                    }
                    if let Some(parent) = path.parent() {
                        std::fs::create_dir_all(parent).map_err(|e| {
                            ExecError::classify("create output directory", e).at_node(id)
                        })?;
                    }
                    let f = std::fs::File::create(path)
                        .map_err(|e| ExecError::classify("create output file", e).at_node(id))?;
                    cmd.stdout(Stdio::from(f));
                }
                EndpointKind::StdoutPipe => {
                    cmd.stdout(Stdio::piped());
                    drain = true;
                }
                _ => {
                    cmd.stdout(Stdio::null());
                }
            },
        }

        // The argv proper, edge references resolved to paths.
        for w in &spec.argv {
            match w {
                SpawnWord::Lit(s) => {
                    cmd.arg(s);
                }
                SpawnWord::In(k) => {
                    cmd.arg(
                        edge_name(r, fifos, node.inputs[*k])
                            .map_err(|e| ExecError::fatal("edge naming", e).at_node(id))?,
                    );
                }
                SpawnWord::Out(j) => {
                    cmd.arg(
                        edge_name(r, fifos, node.outputs[*j])
                            .map_err(|e| ExecError::fatal("edge naming", e).at_node(id))?,
                    );
                }
            }
        }

        let mut child = cmd.spawn().map_err(|e| {
            ExecError::classify(
                "spawn",
                io::Error::new(e.kind(), format!("spawning {bin:?} for a plan node: {e}")),
            )
            .at_node(id)
        })?;
        if let Some(bytes) = feed {
            let mut si = child.stdin.take().ok_or_else(|| {
                ExecError::fatal("spawn", io::Error::other("piped child stdin missing")).at_node(id)
            })?;
            if let Some(prof) = &profile {
                prof.add_in(id, bytes.len() as u64);
            }
            feeders.push(std::thread::spawn(move || {
                // A consumer that exits early breaks this pipe; that
                // is normal teardown, not an error.
                let _ = si.write_all(&bytes);
            }));
        }
        if drain {
            let mut so = child.stdout.take().ok_or_else(|| {
                ExecError::fatal("spawn", io::Error::other("piped child stdout missing"))
                    .at_node(id)
            })?;
            drains.push((
                id,
                std::thread::spawn(move || {
                    let mut buf = Vec::new();
                    let _ = so.read_to_end(&mut buf);
                    buf
                }),
            ));
        }
        spawned_at.push(Instant::now());
        children.push(child);
    }

    // Wait on the region's output producers, in node order — the
    // emitted script's `wait $pash_out_pids`. Polling waits so a
    // region deadline can interrupt (the error path SIGKILLs).
    let mut waited = vec![false; children.len()];
    let mut producer_statuses: Vec<(PlanNodeId, i32)> = Vec::new();
    for (id, node) in r.nodes.iter().enumerate() {
        if node.output_producer {
            let s = wait_deadline(&mut children[id], id, deadline)?;
            waited[id] = true;
            if let Some(prof) = &profile {
                prof.add_busy(id, spawned_at[id].elapsed());
            }
            producer_statuses.push((id, s));
        }
    }

    // Then the status sources — the real commands behind the output,
    // whose folded statuses reproduce the sequential verdict (the
    // emitted script's `pash_spids` loop). Producers finishing
    // implies their upstream sources have finished, so these waits
    // cannot block on a still-streaming child.
    let sources = r.status_sources();
    let mut source_statuses: Vec<(PlanNodeId, i32)> = Vec::new();
    for &id in &sources {
        if waited[id] {
            let s = producer_statuses
                .iter()
                .find(|(n, _)| *n == id)
                .map(|(_, s)| *s)
                .unwrap_or(0);
            source_statuses.push((id, s));
        } else {
            let s = wait_deadline(&mut children[id], id, deadline)?;
            waited[id] = true;
            if let Some(prof) = &profile {
                prof.add_busy(id, spawned_at[id].elapsed());
            }
            source_statuses.push((id, s));
        }
    }

    // Deliver PIPE to everything still running (`kill -s PIPE`, the
    // §5.2 dangling-FIFO fix), then reap with a bounded grace.
    for (id, child) in children.iter().enumerate() {
        if !waited[id] {
            kill_pipe(child.id());
        }
    }
    for h in helpers.iter() {
        kill_pipe(h.id());
    }
    let grace = Instant::now() + cfg.kill_grace;
    let mut other_statuses: Vec<(PlanNodeId, i32)> = Vec::new();
    let reap = |child: &mut Child| -> io::Result<i32> {
        loop {
            if let Some(st) = child.try_wait()? {
                return Ok(exit_code(st));
            }
            if Instant::now() >= grace {
                // A child ignoring PIPE while blocked in a FIFO open
                // would hang the backend; SIGKILL is the backstop.
                child.kill()?;
                let st = child.wait()?;
                return Ok(exit_code(st));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    for (id, child) in children.iter_mut().enumerate() {
        if !waited[id] {
            other_statuses.push((
                id,
                reap(child).map_err(|e| ExecError::classify("reap", e).at_node(id))?,
            ));
            if let Some(prof) = &profile {
                prof.add_busy(id, spawned_at[id].elapsed());
            }
        }
    }
    for h in helpers.iter_mut() {
        reap(h).map_err(|e| ExecError::classify("reap helper", e))?;
    }
    for f in feeders {
        let _ = f.join();
    }
    let mut stdout = Vec::new();
    for (id, d) in drains {
        let buf = d.join().unwrap_or_default();
        if let Some(prof) = &profile {
            prof.add_out(id, buf.len() as u64);
        }
        stdout.extend_from_slice(&buf);
    }

    // A region's status folds its source statuses — exactly what the
    // emitted script computes after `wait $pash_out_pids`.
    let folded: Vec<i32> = source_statuses.iter().map(|(_, s)| *s).collect();
    let status = fold_statuses(&folded);
    let mut statuses = other_statuses;
    for (id, s) in source_statuses {
        if !producer_statuses.iter().any(|(n, _)| *n == id) {
            statuses.push((id, s));
        }
    }
    statuses.extend(producer_statuses);

    // Reserved statuses signal infrastructure death, not a command
    // verdict: 120 is the multicall's InvalidData report (a corrupted
    // or truncated frame crossed a child), 134 is SIGABRT (an injected
    // worker death). Surface them as transient errors so the
    // supervisor retries or falls back instead of letting a damaged
    // region report success. A graceless SIGKILL reports 137 and a
    // teardown SIGPIPE 141 — both normal, neither matches.
    if let Some(&(id, s)) = statuses
        .iter()
        .find(|(_, s)| *s == INFRA_STATUS || *s == ABORT_STATUS)
    {
        return Err(ExecError::transient(
            "worker",
            io::Error::new(
                io::ErrorKind::Interrupted,
                format!("worker exited with infrastructure status {s}"),
            ),
        )
        .at_node(id));
    }
    if let (Some(store), Some(prof)) = (&cfg.profile, &profile) {
        for (id, path) in &out_files {
            if let Ok(md) = std::fs::metadata(path) {
                prof.add_out(*id, md.len());
            }
        }
        store.record(prof);
    }
    Ok(RegionOutput {
        stdout,
        statuses,
        status,
    })
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};

    /// A scratch root with the given files; removed by the caller.
    fn scratch_with(files: &[(&str, &[u8])]) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pash-proc-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for (name, data) in files {
            std::fs::write(dir.join(name), data).expect("write input");
        }
        dir
    }

    fn run_processes(
        src: &str,
        width: usize,
        files: &[(&str, &[u8])],
        stdin: &[u8],
    ) -> Option<(ProgramOutput, PathBuf)> {
        let cfg = match ProcConfig::locate() {
            Ok(c) => c,
            Err(_) => {
                eprintln!("skipping: multicall binaries not built");
                return None;
            }
        };
        let root = scratch_with(files);
        let compiled = compile(
            src,
            &PashConfig {
                width,
                ..Default::default()
            },
        )
        .expect("compile");
        let out = run_plan(&compiled.plan, &cfg, &root, stdin.to_vec()).expect("run");
        Some((out, root))
    }

    #[test]
    fn profiling_records_boundary_bytes_and_busy() {
        let mut cfg = match ProcConfig::locate() {
            Ok(c) => c,
            Err(_) => {
                eprintln!("skipping: multicall binaries not built");
                return;
            }
        };
        let store = Arc::new(ProfileStore::in_memory());
        cfg.profile = Some(store.clone());
        let input = b"Banana\napple\nCherry\napple\nbanana\nAPPLE\n";
        let root = scratch_with(&[("in.txt", input)]);
        let compiled = compile(
            "tr A-Z a-z < in.txt > low.txt",
            &PashConfig {
                width: 1,
                ..Default::default()
            },
        )
        .expect("compile");
        let out = run_plan(&compiled.plan, &cfg, &root, Vec::new()).expect("run");
        assert_eq!(out.status, 0);
        assert_eq!(store.regions(), 1);
        let r = compiled.plan.regions().next().expect("region");
        let rs = store.region_stats(r.fingerprint()).expect("stats");
        let tr = rs.nodes.iter().find(|n| n.label == "tr").expect("tr node");
        // Input file and output file are both parent-visible.
        assert_eq!(tr.bytes_in, input.len() as f64);
        assert_eq!(tr.bytes_out, input.len() as f64);
        assert!(tr.busy_s > 0.0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn pipeline_over_fifos_matches_expected() {
        let input = b"Banana\napple\nCherry\napple\nbanana\nAPPLE\n";
        for width in [1usize, 3] {
            let Some((out, root)) = run_processes(
                "cat in.txt | tr A-Z a-z | sort > out.txt",
                width,
                &[("in.txt", input)],
                b"",
            ) else {
                return;
            };
            assert_eq!(out.status, 0);
            let got = std::fs::read(root.join("out.txt")).expect("out.txt");
            assert_eq!(
                got, b"apple\napple\napple\nbanana\nbanana\ncherry\n",
                "width {width}"
            );
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn stdout_edge_is_captured() {
        let Some((out, root)) = run_processes("tr a-z A-Z", 1, &[], b"hello\n") else {
            return;
        };
        assert_eq!(out.stdout, b"HELLO\n");
        assert_eq!(out.status, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn head_early_exit_reaps_producers() {
        // The §5.2 dangling-FIFO scenario under real processes: head
        // exits after one line; the backend must SIGPIPE and reap the
        // upstream copies instead of hanging.
        let corpus: Vec<u8> = (0..2000)
            .flat_map(|i| format!("{i}\n").into_bytes())
            .collect();
        let Some((out, root)) = run_processes(
            "cat in.txt | sort -rn | head -n 1 > out.txt",
            4,
            &[("in.txt", &corpus)],
            b"",
        ) else {
            return;
        };
        assert_eq!(out.status, 0, "head (the producer) exits cleanly");
        let got = std::fs::read(root.join("out.txt")).expect("out.txt");
        assert_eq!(got, b"1999\n");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn guards_respect_child_statuses() {
        let Some((out, root)) = run_processes(
            "grep zzz in.txt > miss.txt && cat in.txt",
            1,
            &[("in.txt", b"some words\n")],
            b"",
        ) else {
            return;
        };
        assert!(out.stdout.is_empty(), "guard must skip the cat region");
        assert_eq!(out.status, 1, "program status is grep's miss status");
        let _ = std::fs::remove_dir_all(&root);

        let Some((out, root)) = run_processes(
            "grep zzz in.txt > miss.txt || cat in.txt",
            1,
            &[("in.txt", b"some words\n")],
            b"",
        ) else {
            return;
        };
        assert_eq!(out.stdout, b"some words\n");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn round_robin_pipeline_over_fifos() {
        // End-to-end over real children: `r_split` deals tagged
        // blocks, `--framed` workers re-frame, `pash-agg-reorder`
        // restores order.
        let cfg = match ProcConfig::locate() {
            Ok(c) => c,
            Err(_) => {
                eprintln!("skipping: multicall binaries not built");
                return;
            }
        };
        let corpus: Vec<u8> = (0..500)
            .flat_map(|i| format!("Line {i} of the Corpus\n").into_bytes())
            .collect();
        for width in [2usize, 4] {
            let root = scratch_with(&[("in.txt", &corpus)]);
            let compiled = compile(
                "cat in.txt | tr A-Z a-z | grep corpus > out.txt",
                &PashConfig::round_robin(width),
            )
            .expect("compile");
            let out = run_plan(&compiled.plan, &cfg, &root, Vec::new()).expect("run");
            assert_eq!(out.status, 0, "width {width}");
            let got = std::fs::read(root.join("out.txt")).expect("out.txt");
            let want: Vec<u8> = (0..500)
                .flat_map(|i| format!("line {i} of the corpus\n").into_bytes())
                .collect();
            assert_eq!(got, want, "width {width}");
            let _ = std::fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn round_robin_grep_miss_status_folds() {
        // A guarded miss must gate the next step identically at any
        // width: the folded worker statuses report 1, not the
        // reorderer's 0.
        let cfg = match ProcConfig::locate() {
            Ok(c) => c,
            Err(_) => {
                eprintln!("skipping: multicall binaries not built");
                return;
            }
        };
        let root = scratch_with(&[("in.txt", b"some words here\nand more\n")]);
        let compiled = compile(
            "cat in.txt | grep zzz > miss.txt && cat in.txt",
            &PashConfig::round_robin(4),
        )
        .expect("compile");
        let out = run_plan(&compiled.plan, &cfg, &root, Vec::new()).expect("run");
        assert!(out.stdout.is_empty(), "guard must skip the cat region");
        assert_eq!(out.status, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn parallel_waves_match_sequential() {
        let cfg = match ProcConfig::locate() {
            Ok(c) => c,
            Err(_) => {
                eprintln!("skipping: multicall binaries not built");
                return;
            }
        };
        let input = b"apple pie\nbanana split\nanother apple\n";
        let src = "grep apple in.txt > a.txt\ngrep -c an in.txt > b.txt";
        let mut runs = Vec::new();
        for max_inflight in [1usize, 4] {
            let cfg = ProcConfig {
                max_inflight,
                ..cfg.clone()
            };
            let root = scratch_with(&[("in.txt", input)]);
            let compiled = compile(
                src,
                &PashConfig {
                    width: 2,
                    ..Default::default()
                },
            )
            .expect("compile");
            let out = run_plan(&compiled.plan, &cfg, &root, Vec::new()).expect("run");
            runs.push((
                out.status,
                std::fs::read(root.join("a.txt")).expect("a.txt"),
                std::fs::read(root.join("b.txt")).expect("b.txt"),
            ));
            let _ = std::fs::remove_dir_all(&root);
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0].1, b"apple pie\nanother apple\n");
    }

    #[test]
    fn parallel_width_with_segments_and_aggregator() {
        let corpus = b"the quick Brown fox\nJumps over the lazy dog\nthe end\n";
        let Some((out, root)) = run_processes(
            "cat in.txt | tr A-Z a-z | sort | uniq -c > out.txt",
            4,
            &[("in.txt", corpus)],
            b"",
        ) else {
            return;
        };
        assert_eq!(out.status, 0);
        let got = std::fs::read(root.join("out.txt")).expect("out.txt");
        let text = String::from_utf8(got).expect("utf8");
        assert!(text.contains("1 the end"), "{text}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
