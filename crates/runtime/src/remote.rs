//! Remote worker backend: supervised, fault-tolerant plan shipping
//! over Unix sockets.
//!
//! The coordinator serializes a region plan ([`RegionPlan::dump`]),
//! the input files it reads, and its stdin bytes into one
//! length-prefixed request (the [`crate::service`] wire discipline),
//! ships it to a `pash-worker`, and reads the result back as a tagged
//! frame stream ([`crate::edge::SockEdgeReader`], the PR 6 framed
//! format) — so a dropped connection, a half-written frame, or a
//! spliced stream is *detected*, never silently accepted as a short
//! but plausible result.
//!
//! The robustness contract mirrors the local supervisor's, one rung
//! deeper:
//!
//! * a transient remote failure retries on a **different** worker
//!   (per-attempt placement over the healthy set, jittered backoff);
//! * a region deadline tears down the socket — the worker notices the
//!   broken pipe and reaps its per-connection state;
//! * exhausted retries degrade first to a clean **local** attempt at
//!   full width, then to the width-1 **sequential** plan.
//!
//! Injected remote faults may delay a run; they never change its
//! bytes.
//!
//! The worker itself is deliberately dumb: one unsupervised region
//! attempt per connection ([`crate::exec::run_region_faulted`]),
//! against an in-memory filesystem populated from the shipped files.
//! All retry policy lives coordinator-side, so there is exactly one
//! recovery ladder to reason about.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pash_core::plan::{ExecutionPlan, PlanOp, PlanStep, RegionPlan};
use pash_coreutils::fs::{Fs, MemFs};
use pash_coreutils::Registry;

use crate::edge::{SockEdgeReader, SockEdgeWriter, SockMsg};
use crate::exec::{run_region_faulted, ExecConfig, ProgramOutput, RegionOutput};
use crate::fault::{ArmedFault, CancelToken, ExecError, FaultKind};
use crate::service::{bad_data, put_bytes, put_str, put_u32, put_u64, read_frame, Cursor};
use crate::supervise::supervise_region_remote;

/// Request op: execute one region attempt.
pub const OP_EXECUTE: u8 = 1;
/// Request op: health probe.
pub const OP_PING: u8 = 2;
/// Request op: stop accepting connections and exit the serve loop.
pub const OP_SHUTDOWN: u8 = 3;

/// A fault the coordinator armed but the *worker* must deliver (the
/// local kinds — node deaths, stream truncation, stalls — injected
/// inside the worker's attempt so remote runs exercise the same
/// failure surface local runs do). Remote kinds never ride here:
/// conn-drop is delivered by the coordinator's own truncated write,
/// torn-frame by the worker's response cut, slow-worker by a shipped
/// sleep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    pub kind: String,
    pub node: Option<usize>,
    pub edge: Option<usize>,
    pub offset: u64,
    pub delay_ms: u64,
    pub stall_ms: u64,
}

impl WireFault {
    fn from_armed(a: &ArmedFault) -> WireFault {
        WireFault {
            kind: a.kind.name().to_string(),
            node: a.node,
            edge: a.edge,
            offset: a.offset,
            delay_ms: a.delay.as_millis() as u64,
            stall_ms: a.stall.as_millis() as u64,
        }
    }

    fn to_armed(&self) -> io::Result<ArmedFault> {
        let kind = FaultKind::from_name(&self.kind)
            .ok_or_else(|| bad_data(format!("unknown fault kind {:?}", self.kind)))?;
        Ok(ArmedFault {
            kind,
            node: self.node,
            edge: self.edge,
            offset: self.offset,
            delay: Duration::from_millis(self.delay_ms),
            stall: Duration::from_millis(self.stall_ms),
            cancel: CancelToken::new(),
        })
    }
}

/// One shipped region attempt: everything a worker needs, nothing it
/// has to go looking for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecuteRequest {
    /// The region, serialized with [`RegionPlan::dump`] (carries the
    /// file-segment assignments in its `InputSegment` endpoints).
    pub region_dump: String,
    /// Input files the region reads: path and full contents.
    pub files: Vec<(String, Vec<u8>)>,
    /// Bytes for the region's primary boundary stdin.
    pub stdin: Vec<u8>,
    /// A local-kind fault the worker must inject into its attempt.
    pub fault: Option<WireFault>,
    /// Sleep this long before executing (slow-worker injection).
    pub sleep_ms: u64,
    /// Tear the response stream after this many raw bytes
    /// (torn-frame injection); `u64::MAX` means no cut.
    pub response_cut: u64,
}

impl ExecuteRequest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(OP_EXECUTE);
        put_str(&mut out, &self.region_dump);
        put_bytes(&mut out, &self.stdin);
        put_u64(&mut out, self.sleep_ms);
        put_u64(&mut out, self.response_cut);
        match &self.fault {
            None => out.push(0),
            Some(f) => {
                out.push(1);
                put_str(&mut out, &f.kind);
                put_u64(&mut out, f.node.map(|n| n as u64 + 1).unwrap_or(0));
                put_u64(&mut out, f.edge.map(|e| e as u64 + 1).unwrap_or(0));
                put_u64(&mut out, f.offset);
                put_u64(&mut out, f.delay_ms);
                put_u64(&mut out, f.stall_ms);
            }
        }
        put_u32(&mut out, self.files.len() as u32);
        for (path, bytes) in &self.files {
            put_str(&mut out, path);
            put_bytes(&mut out, bytes);
        }
        out
    }

    fn decode(c: &mut Cursor<'_>) -> io::Result<ExecuteRequest> {
        let region_dump = c.string()?;
        let stdin = c.bytes()?;
        let sleep_ms = c.u64()?;
        let response_cut = c.u64()?;
        let fault = match c.u8()? {
            0 => None,
            1 => {
                let kind = c.string()?;
                let node = c.u64()?;
                let edge = c.u64()?;
                Some(WireFault {
                    kind,
                    node: node.checked_sub(1).map(|n| n as usize),
                    edge: edge.checked_sub(1).map(|e| e as usize),
                    offset: c.u64()?,
                    delay_ms: c.u64()?,
                    stall_ms: c.u64()?,
                })
            }
            other => return Err(bad_data(format!("bad fault presence byte {other}"))),
        };
        let nfiles = c.u32()? as usize;
        if nfiles > c.remaining() / 8 {
            return Err(bad_data(format!("inflated file count {nfiles}")));
        }
        let mut files = Vec::with_capacity(nfiles);
        for _ in 0..nfiles {
            let path = c.string()?;
            let bytes = c.bytes()?;
            files.push((path, bytes));
        }
        c.done()?;
        Ok(ExecuteRequest {
            region_dump,
            files,
            stdin,
            fault,
            sleep_ms,
            response_cut,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Binds a worker on `socket` (an existing stale socket file is
/// removed first, like the daemon does).
pub fn bind_worker(socket: &Path) -> io::Result<UnixListener> {
    if socket.exists() {
        std::fs::remove_file(socket)?;
    }
    if let Some(dir) = socket.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    UnixListener::bind(socket)
}

/// The worker serve loop: one request per connection, one thread per
/// connection (an execute wedged on a torn-down coordinator socket
/// must not block health probes). Returns when a `Shutdown` request
/// arrives or `stop` is raised externally (e.g. by a signal handler).
pub fn serve_worker(
    listener: UnixListener,
    socket: &Path,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let registry = Registry::standard();
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let stop = stop.clone();
            let registry = registry.clone();
            let socket = socket.to_path_buf();
            scope.spawn(move || {
                if serve_worker_conn(stream, &registry) {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock our own accept loop.
                    let _ = UnixStream::connect(&socket);
                }
            });
        }
    });
    let _ = std::fs::remove_file(socket);
    Ok(())
}

/// Handles one connection; returns true if it was a shutdown request.
fn serve_worker_conn(mut stream: UnixStream, registry: &Registry) -> bool {
    // A coordinator that armed conn-drop sends a truncated request and
    // vanishes; never hang on it.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let frame = match read_frame(&mut stream) {
        Ok(Some(f)) => f,
        // Clean EOF (probe-and-close) or a torn/oversized request:
        // drop the connection, keep serving.
        _ => return false,
    };
    let mut c = Cursor::new(&frame);
    match c.u8() {
        Ok(OP_PING) => {
            let _ = crate::service::write_frame(&mut stream, b"pong");
            false
        }
        Ok(OP_SHUTDOWN) => {
            let _ = crate::service::write_frame(&mut stream, b"bye");
            true
        }
        Ok(OP_EXECUTE) => {
            match ExecuteRequest::decode(&mut c) {
                Ok(req) => {
                    // The torn-frame cut applies to the *result*
                    // stream; a request that decoded cleanly commits
                    // to answering in the cut (or clean) writer.
                    let mut w = if req.response_cut != u64::MAX {
                        SockEdgeWriter::with_cut(stream, req.response_cut)
                    } else {
                        SockEdgeWriter::new(stream)
                    };
                    run_execute(req, registry, &mut w);
                }
                Err(e) => {
                    let mut w = SockEdgeWriter::new(stream);
                    let _ = w.error(false, &format!("bad execute request: {e}"));
                }
            }
            false
        }
        _ => false,
    }
}

/// Runs one shipped region attempt and streams the result back.
fn run_execute(req: ExecuteRequest, registry: &Registry, w: &mut SockEdgeWriter<UnixStream>) {
    if req.sleep_ms > 0 {
        std::thread::sleep(Duration::from_millis(req.sleep_ms));
    }
    let region = match RegionPlan::parse_dump(&req.region_dump) {
        Ok(r) => r,
        Err(e) => {
            let _ = w.error(false, &format!("bad region dump: {e}"));
            return;
        }
    };
    let armed = match req.fault.as_ref().map(WireFault::to_armed).transpose() {
        Ok(a) => a,
        Err(e) => {
            let _ = w.error(false, &format!("bad fault spec: {e}"));
            return;
        }
    };
    let fs = Arc::new(MemFs::new());
    for (path, bytes) in req.files {
        fs.add(path, bytes);
    }
    let cfg = ExecConfig::default();
    match run_region_faulted(
        &region,
        registry,
        fs.clone(),
        req.stdin,
        &cfg,
        armed.as_ref(),
    ) {
        Ok(out) => {
            let _ = stream_region_output(&region, &out, &fs, w);
        }
        Err(e) => {
            let _ = w.error(e.is_transient(), &format!("{e}"));
        }
    }
}

/// Streams a finished attempt: stdout chunks, the output files the
/// region declared, then the terminal status frame.
fn stream_region_output(
    region: &RegionPlan,
    out: &RegionOutput,
    fs: &MemFs,
    w: &mut SockEdgeWriter<UnixStream>,
) -> io::Result<()> {
    for chunk in out.stdout.chunks(64 * 1024).filter(|c| !c.is_empty()) {
        w.stdout_chunk(chunk)?;
    }
    let mut written = region.writes_files();
    written.sort();
    written.dedup();
    for path in written {
        if let Ok(bytes) = fs.read(&path) {
            w.output_file(&path, &bytes)?;
        }
    }
    w.status(out.status, &out.statuses)
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// The coordinator's view of the worker fleet: socket paths plus the
/// latest health verdicts. Placement is per-attempt — attempt `i` of a
/// region with fingerprint `fp` lands on healthy worker
/// `(fp + i) mod n` — so a retry after a transient remote failure
/// moves to a *different* worker whenever more than one is healthy.
pub struct WorkerPool {
    sockets: Vec<PathBuf>,
    healthy: Vec<bool>,
    /// Socket I/O timeout for health probes.
    pub probe_timeout: Duration,
}

impl WorkerPool {
    pub fn new(sockets: Vec<PathBuf>) -> WorkerPool {
        let healthy = vec![true; sockets.len()];
        WorkerPool {
            sockets,
            healthy,
            probe_timeout: Duration::from_secs(2),
        }
    }

    /// Pings every worker, refreshes the health map, and returns how
    /// many answered.
    pub fn probe(&mut self) -> usize {
        for (i, s) in self.sockets.iter().enumerate() {
            self.healthy[i] = ping(s, self.probe_timeout);
        }
        self.healthy.iter().filter(|h| **h).count()
    }

    /// Number of workers currently believed healthy.
    pub fn healthy_count(&self) -> usize {
        self.healthy.iter().filter(|h| **h).count()
    }

    /// The healthy worker for attempt `attempt` of a region with
    /// fingerprint `fp`, with its pool index (for reroute
    /// accounting). `None` when no worker is healthy.
    pub fn pick(&self, fp: u64, attempt: u32) -> Option<(usize, &Path)> {
        let healthy: Vec<usize> = (0..self.sockets.len())
            .filter(|&i| self.healthy[i])
            .collect();
        if healthy.is_empty() {
            return None;
        }
        let at = ((fp.wrapping_add(attempt as u64)) % healthy.len() as u64) as usize;
        let idx = healthy[at];
        Some((idx, &self.sockets[idx]))
    }

    /// Marks a worker unhealthy after a failed attempt, so the next
    /// placement skips it until the next probe.
    pub fn mark_down(&mut self, idx: usize) {
        if let Some(h) = self.healthy.get_mut(idx) {
            *h = false;
        }
    }
}

/// One health probe: connect, ping, expect a pong.
fn ping(socket: &Path, timeout: Duration) -> bool {
    let Ok(stream) = UnixStream::connect(socket) else {
        return false;
    };
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    if crate::service::write_frame(&mut stream, &[OP_PING]).is_err() {
        return false;
    }
    matches!(read_frame(&mut stream), Ok(Some(f)) if f == b"pong")
}

/// Sends a shutdown request to a worker (best effort).
pub fn shutdown_worker(socket: &Path) -> bool {
    let Ok(mut stream) = UnixStream::connect(socket) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if crate::service::write_frame(&mut stream, &[OP_SHUTDOWN]).is_err() {
        return false;
    }
    matches!(read_frame(&mut stream), Ok(Some(f)) if f == b"bye")
}

/// Ships one region attempt to `socket` and decodes the result
/// stream. All failure shapes — connect refused, torn stream, corrupt
/// frame, missing terminal frame, read timeout — map to classified
/// [`ExecError`]s; a read timeout under a region deadline is reported
/// with the supervisor's deadline context so the ladder counts it as
/// a deadline kill.
fn execute_remote(
    socket: &Path,
    r: &RegionPlan,
    armed: Option<&ArmedFault>,
    feed: &[u8],
    fs: &Arc<dyn Fs>,
    deadline: Option<Duration>,
) -> Result<RegionOutput, ExecError> {
    let transient = |ctx: &'static str, e: io::Error| -> ExecError { ExecError::transient(ctx, e) };
    // Gather the inputs the region reads. A file the coordinator
    // cannot open is simply not shipped: the worker's edge wiring then
    // fails exactly like a local attempt on the same filesystem would.
    let mut paths = r.reads_files();
    // Commands may also open literal argv operands by path (e.g. an
    // unsplittable `grep pat in.txt` keeps the file as a plain word,
    // not a stream edge). Ship every literal the coordinator can
    // open; command names and flags fail the open below and drop out.
    let mut data_driven = false;
    for n in &r.nodes {
        if let PlanOp::Exec { argv, .. } = &n.op {
            data_driven |= argv.first().and_then(|a| a.as_lit()) == Some("xargs");
            paths.extend(
                argv.iter()
                    .skip(1)
                    .filter_map(|a| a.as_lit().map(String::from)),
            );
        }
    }
    if data_driven {
        // `xargs` opens paths named in its *input data*, which no
        // static scan of the plan can see — ship the coordinator's
        // whole filesystem image rather than guess.
        if let Ok(all) = fs.list("") {
            paths.extend(all);
        }
    }
    paths.sort();
    paths.dedup();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        if let Ok(mut h) = fs.open(&p) {
            let mut bytes = Vec::new();
            if h.read_to_end(&mut bytes).is_ok() {
                files.push((p, bytes));
            }
        }
    }
    let mut req = ExecuteRequest {
        region_dump: r.dump(),
        files,
        stdin: feed.to_vec(),
        fault: None,
        sleep_ms: 0,
        response_cut: u64::MAX,
    };
    let mut request_cut = None;
    match armed {
        Some(a) if a.kind == FaultKind::ConnDrop => request_cut = Some(a.offset),
        Some(a) if a.kind == FaultKind::SlowWorker => req.sleep_ms = a.stall.as_millis() as u64,
        Some(a) if a.kind == FaultKind::TornFrame => req.response_cut = a.offset,
        Some(a) => req.fault = Some(WireFault::from_armed(a)),
        None => {}
    }

    let mut stream = UnixStream::connect(socket).map_err(|e| transient("remote connect", e))?;
    stream
        .set_read_timeout(deadline.or(Some(Duration::from_secs(60))))
        .map_err(|e| transient("remote socket", e))?;
    let payload = req.encode();
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&payload);
    match request_cut {
        Some(cut) => {
            // Injected connection drop: ship a half-written request,
            // then hang up mid-frame. The worker sees a torn length-
            // prefixed frame; we see EOF before any terminal frame.
            let keep = (cut as usize).min(framed.len().saturating_sub(1));
            stream
                .write_all(&framed[..keep])
                .map_err(|e| transient("remote send", e))?;
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
        None => {
            stream
                .write_all(&framed)
                .map_err(|e| transient("remote send", e))?;
        }
    }

    let mut reader = SockEdgeReader::new(stream);
    let mut stdout = Vec::new();
    let mut out_files: Vec<(String, Vec<u8>)> = Vec::new();
    loop {
        match reader.next() {
            Ok(Some(SockMsg::Stdout(chunk))) => stdout.extend_from_slice(&chunk),
            Ok(Some(SockMsg::File(path, bytes))) => out_files.push((path, bytes)),
            Ok(Some(SockMsg::Status {
                status, statuses, ..
            })) => {
                // Only a stream that reached its terminal frame may
                // touch the coordinator's filesystem.
                for (path, bytes) in out_files {
                    let mut w = fs
                        .create(&path)
                        .map_err(|e| ExecError::classify("remote output file", e))?;
                    w.write_all(&bytes)
                        .map_err(|e| ExecError::classify("remote output file", e))?;
                }
                return Ok(RegionOutput {
                    stdout,
                    statuses,
                    status,
                });
            }
            Ok(Some(SockMsg::Error { transient, message })) => {
                let e = io::Error::other(message);
                return Err(if transient {
                    ExecError::transient("remote worker", e)
                } else {
                    ExecError::fatal("remote worker", e)
                });
            }
            Ok(None) => {
                return Err(transient(
                    "remote stream",
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "result stream ended before its terminal frame",
                    ),
                ));
            }
            Err(e)
                if deadline.is_some()
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                // The region deadline: drop the socket (tearing down
                // the worker's attempt) and report it as a deadline so
                // the supervisor counts the kill.
                return Err(transient("region deadline", e));
            }
            Err(e) => return Err(transient("remote stream", e)),
        }
    }
}

/// Runs one region under the full remote recovery ladder:
/// remote attempts with per-attempt placement → clean local attempt →
/// width-1 sequential fallback.
fn run_region_remote(
    r: &RegionPlan,
    fallback: Option<&RegionPlan>,
    registry: &Registry,
    fs: &Arc<dyn Fs>,
    feed: Vec<u8>,
    cfg: &ExecConfig,
    pool: &WorkerPool,
) -> io::Result<RegionOutput> {
    let sup = &cfg.supervisor;
    let deadline = sup.region_deadline;
    let fp = r.fingerprint();
    let mut last_pick: Option<usize> = None;
    let attempt = |i: u32, armed: Option<ArmedFault>| -> Result<RegionOutput, ExecError> {
        let Some((idx, socket)) = pool.pick(fp, i) else {
            return Err(ExecError::fatal(
                "remote placement",
                io::Error::new(io::ErrorKind::NotConnected, "no healthy workers"),
            ));
        };
        if i > 0 && last_pick.is_some_and(|p| p != idx) {
            sup.note_reroute();
        }
        last_pick = Some(idx);
        let res = execute_remote(socket, r, armed.as_ref(), &feed, fs, deadline);
        if let Err(e) = &res {
            if e.is_deadline() {
                sup.note_deadline_kill();
            }
        }
        res
    };
    let local = Some(|| {
        // The local rung: the same region, clean, on the coordinator.
        run_region_faulted(r, registry, fs.clone(), feed.clone(), cfg, None)
    });
    let out = match fallback {
        Some(fb) => supervise_region_remote(
            r,
            sup,
            attempt,
            local,
            Some(|| run_region_faulted(fb, registry, fs.clone(), feed.clone(), cfg, None)),
        ),
        None => supervise_region_remote(
            r,
            sup,
            attempt,
            local,
            None::<fn() -> Result<RegionOutput, ExecError>>,
        ),
    };
    out.map_err(io::Error::from)
}

/// Runs a whole program through the remote backend: region steps ship
/// to workers under the recovery ladder; guard and data-noop shell
/// steps interpret locally, exactly as the threaded walker does.
///
/// `fallback` is the same program compiled at width 1 (the sequential
/// reference); it must align step-for-step to be used.
pub fn run_program_remote(
    plan: &ExecutionPlan,
    fallback: Option<&ExecutionPlan>,
    registry: &Registry,
    fs: Arc<dyn Fs>,
    stdin: Vec<u8>,
    cfg: &ExecConfig,
    pool: &WorkerPool,
) -> io::Result<ProgramOutput> {
    let cfg = ExecConfig {
        supervisor: cfg.supervisor.fresh_run(),
        ..cfg.clone()
    };
    let aligned = fallback.filter(|f| {
        f.steps.len() == plan.steps.len()
            && f.steps.iter().zip(&plan.steps).all(|(a, b)| {
                matches!(
                    (a, b),
                    (PlanStep::Region(_), PlanStep::Region(_))
                        | (PlanStep::Guard(_), PlanStep::Guard(_))
                        | (PlanStep::Shell { .. }, PlanStep::Shell { .. })
                )
            })
    });
    let mut stdout = Vec::new();
    let mut status = 0;
    let mut stdin = Some(stdin);
    let mut skip_next = false;
    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            PlanStep::Guard(cond) => skip_next = !cond.admits(status),
            PlanStep::Shell { text, data_noop } => {
                if std::mem::take(&mut skip_next) {
                    continue;
                }
                if !data_noop {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        format!("cannot execute shell step remotely: `{text}`"),
                    ));
                }
                status = 0;
            }
            PlanStep::Region(r) => {
                if std::mem::take(&mut skip_next) {
                    continue;
                }
                let feed = if r.reads_stdin() {
                    stdin.take().unwrap_or_default()
                } else {
                    Vec::new()
                };
                let fb = match aligned.map(|f| &f.steps[i]) {
                    Some(PlanStep::Region(fr)) => Some(fr),
                    _ => None,
                };
                let out = run_region_remote(r, fb, registry, &fs, feed, &cfg, pool)?;
                status = out.status();
                stdout.extend_from_slice(&out.stdout);
            }
        }
    }
    Ok(ProgramOutput { stdout, status })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::supervise::SupervisorSettings;
    use pash_core::compile::{compile, PashConfig};

    fn plan_pair(src: &str, width: usize) -> (ExecutionPlan, ExecutionPlan) {
        // Round-robin split so framed edges exist: the stream fault
        // kinds (truncate/corrupt) need an eligible site.
        let wide = compile(src, &PashConfig::round_robin(width))
            .expect("compile wide")
            .plan;
        let seq = compile(src, &PashConfig::round_robin(1))
            .expect("compile seq")
            .plan;
        (wide, seq)
    }

    fn corpus_fs() -> Arc<MemFs> {
        let fs = Arc::new(MemFs::new());
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&format!("line {} word{}\n", i % 13, i % 7));
        }
        fs.add("in.txt", text.into_bytes());
        fs
    }

    struct Workers {
        sockets: Vec<PathBuf>,
        handles: Vec<std::thread::JoinHandle<()>>,
    }

    fn spawn_workers(tag: &str, n: usize) -> Workers {
        let dir = std::env::temp_dir();
        let mut sockets = Vec::new();
        let mut handles = Vec::new();
        for i in 0..n {
            let socket = dir.join(format!("pash-worker-test-{tag}-{}-{i}", std::process::id()));
            let _ = std::fs::remove_file(&socket);
            let listener = bind_worker(&socket).expect("bind worker");
            let s = socket.clone();
            handles.push(std::thread::spawn(move || {
                serve_worker(listener, &s, Arc::new(AtomicBool::new(false))).expect("serve");
            }));
            sockets.push(socket);
        }
        Workers { sockets, handles }
    }

    impl Drop for Workers {
        fn drop(&mut self) {
            for s in &self.sockets {
                shutdown_worker(s);
            }
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }

    const SCRIPT: &str = "cat in.txt | tr a-z A-Z | sort | uniq -c > out.txt ; \
                          cat in.txt | grep line | wc -l";

    fn local_reference(fs: &Arc<MemFs>) -> (Vec<u8>, i32, Vec<u8>) {
        let (_, seq) = plan_pair(SCRIPT, 1);
        let snap: Arc<dyn Fs> = Arc::new(fs.snapshot());
        let out = crate::exec::run_program(
            &seq,
            &Registry::standard(),
            snap.clone(),
            Vec::new(),
            &ExecConfig::default(),
        )
        .expect("local run");
        let file = snap
            .open("out.txt")
            .and_then(|mut h| {
                let mut b = Vec::new();
                h.read_to_end(&mut b)?;
                Ok(b)
            })
            .expect("out.txt");
        (out.stdout, out.status, file)
    }

    #[test]
    fn remote_program_matches_local_reference() {
        let workers = spawn_workers("basic", 2);
        let fs = corpus_fs();
        let (want_stdout, want_status, want_file) = local_reference(&fs);
        let (wide, seq) = plan_pair(SCRIPT, 4);
        let mut pool = WorkerPool::new(workers.sockets.clone());
        assert_eq!(pool.probe(), 2, "both workers answer pings");
        let run_fs: Arc<dyn Fs> = fs.clone();
        let out = run_program_remote(
            &wide,
            Some(&seq),
            &Registry::standard(),
            run_fs,
            Vec::new(),
            &ExecConfig::default(),
            &pool,
        )
        .expect("remote run");
        assert_eq!(out.stdout, want_stdout);
        assert_eq!(out.status, want_status);
        assert_eq!(fs.read("out.txt").expect("out.txt"), want_file);
    }

    #[test]
    fn remote_faults_delay_but_never_change_bytes() {
        let workers = spawn_workers("faults", 2);
        let base_fs = corpus_fs();
        let (want_stdout, want_status, want_file) = local_reference(&base_fs);
        let (wide, seq) = plan_pair(SCRIPT, 4);
        let mut pool = WorkerPool::new(workers.sockets.clone());
        assert_eq!(pool.probe(), 2);
        for kind in FaultKind::ALL {
            let sup = SupervisorSettings {
                fault: Some(FaultPlan::new(kind, 0xC0FFEE).budget(1)),
                fallback: true,
                ..Default::default()
            };
            let cfg = ExecConfig {
                supervisor: sup,
                ..Default::default()
            };
            let fs = Arc::new(base_fs.snapshot());
            let run_fs: Arc<dyn Fs> = fs.clone();
            let out = run_program_remote(
                &wide,
                Some(&seq),
                &Registry::standard(),
                run_fs,
                Vec::new(),
                &cfg,
                &pool,
            )
            .unwrap_or_else(|e| panic!("remote run under {}: {e}", kind.name()));
            assert_eq!(out.stdout, want_stdout, "stdout under {}", kind.name());
            assert_eq!(out.status, want_status, "status under {}", kind.name());
            assert_eq!(
                fs.read("out.txt").expect("out.txt"),
                want_file,
                "out.txt under {}",
                kind.name()
            );
            assert!(
                cfg.supervisor.counters.injected() >= 1,
                "{} armed at least once",
                kind.name()
            );
        }
    }

    #[test]
    fn remote_retry_reroutes_to_another_worker() {
        let workers = spawn_workers("reroute", 2);
        let fs = corpus_fs();
        let (want_stdout, ..) = local_reference(&fs);
        let (wide, seq) = plan_pair(SCRIPT, 4);
        let mut pool = WorkerPool::new(workers.sockets.clone());
        assert_eq!(pool.probe(), 2);
        let sup = SupervisorSettings {
            fault: Some(FaultPlan::new(FaultKind::ConnDrop, 7).budget(1)),
            fallback: true,
            ..Default::default()
        };
        let cfg = ExecConfig {
            supervisor: sup,
            ..Default::default()
        };
        let run_fs: Arc<dyn Fs> = Arc::new(fs.snapshot());
        let out = run_program_remote(
            &wide,
            Some(&seq),
            &Registry::standard(),
            run_fs,
            Vec::new(),
            &cfg,
            &pool,
        )
        .expect("remote run");
        assert_eq!(out.stdout, want_stdout);
        let c = &cfg.supervisor.counters;
        assert!(c.retries() >= 1, "conn drop forced a retry");
        assert!(
            c.reroutes() >= 1,
            "the retry moved to the other worker (reroutes={})",
            c.reroutes()
        );
    }

    #[test]
    fn deadline_tears_down_slow_worker_and_recovers() {
        let workers = spawn_workers("deadline", 2);
        let fs = corpus_fs();
        let (want_stdout, ..) = local_reference(&fs);
        let (wide, seq) = plan_pair(SCRIPT, 4);
        let mut pool = WorkerPool::new(workers.sockets.clone());
        assert_eq!(pool.probe(), 2);
        let sup = SupervisorSettings {
            fault: Some(
                FaultPlan::new(FaultKind::SlowWorker, 3)
                    .budget(1)
                    .stall(Duration::from_millis(1000)),
            ),
            region_deadline: Some(Duration::from_millis(150)),
            fallback: true,
            ..Default::default()
        };
        let cfg = ExecConfig {
            supervisor: sup,
            ..Default::default()
        };
        let run_fs: Arc<dyn Fs> = Arc::new(fs.snapshot());
        let out = run_program_remote(
            &wide,
            Some(&seq),
            &Registry::standard(),
            run_fs,
            Vec::new(),
            &cfg,
            &pool,
        )
        .expect("remote run");
        assert_eq!(out.stdout, want_stdout);
        assert!(
            cfg.supervisor.counters.deadline_kills() >= 1,
            "the stalled attempt was killed by the region deadline"
        );
    }

    #[test]
    fn dead_pool_degrades_to_local_then_matches() {
        // No worker ever listens: every remote attempt fails to
        // connect, the ladder degrades to the clean local rung, and
        // the output still matches the sequential reference.
        let fs = corpus_fs();
        let (want_stdout, want_status, want_file) = local_reference(&fs);
        let (wide, seq) = plan_pair(SCRIPT, 4);
        let pool = WorkerPool::new(vec![std::env::temp_dir().join("pash-worker-nobody")]);
        let sup = SupervisorSettings {
            fallback: true,
            ..Default::default()
        };
        let cfg = ExecConfig {
            supervisor: sup,
            ..Default::default()
        };
        let run_fs: Arc<dyn Fs> = fs.clone();
        let out = run_program_remote(
            &wide,
            Some(&seq),
            &Registry::standard(),
            run_fs,
            Vec::new(),
            &cfg,
            &pool,
        )
        .expect("degraded run");
        assert_eq!(out.stdout, want_stdout);
        assert_eq!(out.status, want_status);
        assert_eq!(fs.read("out.txt").expect("out.txt"), want_file);
        assert!(
            cfg.supervisor.counters.local_fallbacks() >= 1,
            "the local rung fired"
        );
    }

    #[test]
    fn execute_request_round_trips() {
        let req = ExecuteRequest {
            region_dump: "region nodes=0 edges=0 replayable=true\n".to_string(),
            files: vec![("in.txt".to_string(), b"abc".to_vec())],
            stdin: b"feed".to_vec(),
            fault: Some(WireFault {
                kind: "exec-die".to_string(),
                node: Some(3),
                edge: None,
                offset: 7,
                delay_ms: 20,
                stall_ms: 50,
            }),
            sleep_ms: 5,
            response_cut: u64::MAX,
        };
        let enc = req.encode();
        let mut c = Cursor::new(&enc);
        assert_eq!(c.u8().unwrap(), OP_EXECUTE);
        let back = ExecuteRequest::decode(&mut c).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn worker_pool_places_per_attempt_and_skips_unhealthy() {
        let mut pool = WorkerPool::new(vec![
            PathBuf::from("/tmp/w0"),
            PathBuf::from("/tmp/w1"),
            PathBuf::from("/tmp/w2"),
        ]);
        let (a0, _) = pool.pick(100, 0).unwrap();
        let (a1, _) = pool.pick(100, 1).unwrap();
        assert_ne!(a0, a1, "consecutive attempts land on different workers");
        pool.mark_down(a1);
        assert_eq!(pool.healthy_count(), 2);
        let (b1, _) = pool.pick(100, 1).unwrap();
        assert_ne!(b1, a1, "downed worker is skipped");
        pool.mark_down(0);
        pool.mark_down(1);
        pool.mark_down(2);
        assert!(pool.pick(100, 0).is_none(), "empty pool yields no pick");
    }
}
