//! The runtime I/O layer: turning a region's resolved plan edges into
//! transports.
//!
//! Lowering (PR 3) decides *what* every edge is — internal pipe,
//! boundary stdin/stdout, file, file segment. This module decides
//! *how* those edges move bytes, in the two ways the runtime knows:
//!
//! * [`MemEdges`] — in-process wiring for the `threads` backend:
//!   bounded ring [`crate::pipe`]s for internal edges, cursors over
//!   file/segment bytes, a shared buffer collecting region stdout;
//! * [`FifoDir`] — on-disk wiring for the `processes` backend: one
//!   named FIFO per internal pipe edge in a private scratch
//!   directory, created with `mkfifo(3)` and removed on drop — the
//!   same artifact the emitted shell script builds with `mkfifo`.
//!
//! Keeping both wirings behind one module means stdin routing,
//! buffering discipline, and edge naming stay in one place instead of
//! being re-derived per backend.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use pash_core::plan::{EndpointKind, PlanEdgeId, PlanNode, RegionPlan};
use pash_coreutils::fs::Fs;

use crate::fault::{ArmedFault, FaultKind, FaultMode, FaultyWriter};
use crate::fileseg::read_segment;
use crate::pipe::{pipe_monitored, PipeMonitor};

/// Buffer in front of every edge writer: commands emit line-sized
/// writes, and each unbuffered write on a pipe edge is a lock
/// acquisition. Flush happens on drop at node exit.
pub const EDGE_WRITE_BUFFER: usize = 32 * 1024;

/// Wraps an edge writer in the standard edge buffer.
pub fn buffered(w: impl Write + Send + 'static) -> Box<dyn Write + Send> {
    Box::new(io::BufWriter::with_capacity(EDGE_WRITE_BUFFER, w))
}

/// A writer into a shared buffer (the region's stdout collector).
pub struct SharedVecWriter(pub Arc<Mutex<Vec<u8>>>);

impl Write for SharedVecWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("stdout lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// In-process transports for one region's edges: each edge id maps to
/// a reader (consumer side), a writer (producer side), or both.
///
/// Built once per region by [`MemEdges::wire`]; the executor then
/// *takes* each node's endpoints as it spawns node threads, leaving
/// the map empty when the region is fully wired.
pub struct MemEdges {
    readers: HashMap<PlanEdgeId, Box<dyn Read + Send>>,
    writers: HashMap<PlanEdgeId, Box<dyn Write + Send>>,
    stdout: Arc<Mutex<Vec<u8>>>,
    monitors: Vec<PipeMonitor>,
}

impl MemEdges {
    /// Wires every edge of `r`: ring pipes for internal edges, the
    /// given `stdin` bytes for the primary boundary input, a shared
    /// collector for stdout edges, and `fs`-backed files/segments.
    pub fn wire(
        r: &RegionPlan,
        fs: &Arc<dyn Fs>,
        stdin: Vec<u8>,
        pipe_capacity: usize,
    ) -> io::Result<MemEdges> {
        MemEdges::wire_with(r, fs, stdin, pipe_capacity, None)
    }

    /// [`MemEdges::wire`] with an armed fault: the fault's target
    /// edge gets a [`FaultyWriter`] wrapper (stream faults) or fails
    /// to wire at all (the in-process analogue of a `mkfifo` error).
    pub fn wire_with(
        r: &RegionPlan,
        fs: &Arc<dyn Fs>,
        stdin: Vec<u8>,
        pipe_capacity: usize,
        fault: Option<&ArmedFault>,
    ) -> io::Result<MemEdges> {
        let stdout: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let mut readers: HashMap<PlanEdgeId, Box<dyn Read + Send>> = HashMap::new();
        let mut writers: HashMap<PlanEdgeId, Box<dyn Write + Send>> = HashMap::new();
        let mut monitors: Vec<PipeMonitor> = Vec::new();
        let mut stdin = Some(stdin);
        let fault_mode = |e: PlanEdgeId| -> Option<FaultMode> {
            fault.and_then(|a| {
                if a.edge == Some(e) && a.is_stream_fault() {
                    a.writer_mode()
                } else {
                    None
                }
            })
        };
        for (e, edge) in r.edges.iter().enumerate() {
            if let Some(a) = fault {
                if a.kind == FaultKind::MkfifoFail && a.edge == Some(e) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected edge wiring failure",
                    ));
                }
            }
            match &edge.kind {
                EndpointKind::Pipe => {
                    let (w, rd, m) = pipe_monitored(pipe_capacity);
                    monitors.push(m);
                    let w = match fault_mode(e) {
                        Some(mode) => buffered(FaultyWriter::new(w, mode)),
                        None => buffered(w),
                    };
                    writers.insert(e, w);
                    readers.insert(e, Box::new(rd));
                }
                EndpointKind::StdinPipe { primary } => {
                    let data = if *primary {
                        stdin.take().unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    readers.insert(e, Box::new(io::Cursor::new(data)));
                }
                EndpointKind::StdoutPipe => {
                    let w = SharedVecWriter(stdout.clone());
                    let w = match fault_mode(e) {
                        Some(mode) => buffered(FaultyWriter::new(w, mode)),
                        None => buffered(w),
                    };
                    writers.insert(e, w);
                }
                EndpointKind::InputFile(path) => {
                    readers.insert(e, fs.open(path)?);
                }
                EndpointKind::OutputFile(path) => {
                    let w = fs.create(path)?;
                    let w = match fault_mode(e) {
                        Some(mode) => buffered(FaultyWriter::new(w, mode)),
                        None => buffered(w),
                    };
                    writers.insert(e, w);
                }
                EndpointKind::InputSegment { path, part, of } => {
                    let data = read_segment(fs, path, *part, *of)?;
                    readers.insert(e, Box::new(io::Cursor::new(data)));
                }
                // Detached edges need no transport.
                EndpointKind::Detached => {}
            }
        }
        Ok(MemEdges {
            readers,
            writers,
            stdout,
            monitors,
        })
    }

    /// Takes the monitor handles of every internal pipe (for the
    /// region-deadline watchdog).
    pub fn take_monitors(&mut self) -> Vec<PipeMonitor> {
        std::mem::take(&mut self.monitors)
    }

    /// Takes the consumer endpoints of `node`'s inputs, in input
    /// order. Untracked edges read as empty streams.
    pub fn take_inputs(&mut self, node: &PlanNode) -> Vec<Box<dyn Read + Send>> {
        node.inputs
            .iter()
            .map(|&e| {
                self.readers
                    .remove(&e)
                    .unwrap_or_else(|| Box::new(io::Cursor::new(Vec::new())))
            })
            .collect()
    }

    /// Takes the producer endpoints of `node`'s outputs, in output
    /// order. Untracked edges discard their bytes.
    pub fn take_outputs(&mut self, node: &PlanNode) -> Vec<Box<dyn Write + Send>> {
        node.outputs
            .iter()
            .map(|&e| {
                self.writers
                    .remove(&e)
                    .unwrap_or_else(|| Box::new(io::sink()))
            })
            .collect()
    }

    /// The shared stdout collector (drain after every producer
    /// dropped its writer).
    pub fn stdout_handle(&self) -> Arc<Mutex<Vec<u8>>> {
        self.stdout.clone()
    }
}

/// Creates a FIFO special file (`mkfifo(3)`). The workspace vendors no
/// `libc`, but `std` already links the platform C library, so the one
/// symbol the FIFO wiring needs is declared directly.
#[cfg(unix)]
pub fn mkfifo(path: &Path) -> io::Result<()> {
    use std::os::unix::ffi::OsStrExt;
    extern "C" {
        fn mkfifo(path: *const std::os::raw::c_char, mode: u32) -> i32;
    }
    let c = std::ffi::CString::new(path.as_os_str().as_bytes())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "path contains NUL"))?;
    if unsafe { mkfifo(c.as_ptr().cast(), 0o600) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Unsupported off Unix: named FIFOs are a POSIX feature.
#[cfg(not(unix))]
pub fn mkfifo(_path: &Path) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "named FIFOs require a Unix platform",
    ))
}

/// On-disk wiring for one region: a private scratch directory holding
/// one named FIFO per internal pipe edge (`p<edge>`, mirroring the
/// emitted script's `$PASH_TMP/r<region>_p<edge>` naming).
///
/// The directory and its FIFOs are removed on drop.
pub struct FifoDir {
    dir: PathBuf,
    paths: HashMap<PlanEdgeId, PathBuf>,
}

impl FifoDir {
    /// Creates the scratch directory under `scratch_root` (tagged so
    /// concurrent regions/processes cannot collide) and a FIFO for
    /// every internal pipe edge of `r`.
    pub fn create(r: &RegionPlan, scratch_root: &Path, tag: &str) -> io::Result<FifoDir> {
        FifoDir::create_with(r, scratch_root, tag, None)
    }

    /// [`FifoDir::create`] with an armed fault: a
    /// [`FaultKind::MkfifoFail`] targeting one of the region's pipe
    /// edges makes that edge's `mkfifo` fail. The scratch directory
    /// is removed on any error, so a failed attempt leaks nothing.
    pub fn create_with(
        r: &RegionPlan,
        scratch_root: &Path,
        tag: &str,
        fault: Option<&ArmedFault>,
    ) -> io::Result<FifoDir> {
        let dir = scratch_root.join(format!("pash-fifo-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let mut paths = HashMap::new();
        for e in r.internal_pipes() {
            let injected = fault
                .map(|a| a.kind == FaultKind::MkfifoFail && a.edge == Some(e))
                .unwrap_or(false);
            let p = dir.join(format!("p{e}"));
            let res = if injected {
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected mkfifo failure",
                ))
            } else {
                mkfifo(&p)
            };
            if let Err(err) = res {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(err);
            }
            paths.insert(e, p);
        }
        Ok(FifoDir { dir, paths })
    }

    /// The FIFO path backing edge `e`, if `e` is an internal pipe.
    pub fn path(&self, e: PlanEdgeId) -> Option<&Path> {
        self.paths.get(&e).map(|p| p.as_path())
    }

    /// The scratch directory itself.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for FifoDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};
    use pash_core::plan::PlanStep;
    use pash_coreutils::fs::MemFs;

    fn region(src: &str, width: usize) -> RegionPlan {
        let compiled = compile(
            src,
            &PashConfig {
                width,
                ..Default::default()
            },
        )
        .expect("compile");
        compiled
            .plan
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Region(r) => Some(r.clone()),
                _ => None,
            })
            .expect("region")
    }

    #[test]
    fn mem_wiring_covers_all_live_edges() {
        let r = region("cat in.txt | tr A-Z a-z | sort > out.txt", 2);
        let fs = MemFs::new();
        fs.add("in.txt", b"b\na\n".to_vec());
        let fs: Arc<dyn Fs> = Arc::new(fs);
        let mut edges = MemEdges::wire(&r, &fs, Vec::new(), 1024).expect("wire");
        // Taking every node's endpoints drains the maps completely.
        for node in &r.nodes {
            let ins = edges.take_inputs(node);
            let outs = edges.take_outputs(node);
            assert_eq!(ins.len(), node.inputs.len());
            assert_eq!(outs.len(), node.outputs.len());
        }
        assert!(edges.readers.is_empty(), "all readers taken");
        assert!(edges.writers.is_empty(), "all writers taken");
    }

    #[test]
    fn mem_wiring_missing_input_file_errors() {
        let r = region("cat nope.txt | sort > out.txt", 1);
        let fs: Arc<dyn Fs> = Arc::new(MemFs::new());
        assert!(MemEdges::wire(&r, &fs, Vec::new(), 1024).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn fifo_dir_creates_and_cleans_up() {
        let r = region("cat in.txt | tr A-Z a-z | sort > out.txt", 2);
        let pipes: Vec<_> = r.internal_pipes().collect();
        assert!(!pipes.is_empty());
        let dir;
        {
            let fifos = FifoDir::create(&r, &std::env::temp_dir(), "edge-test").expect("fifos");
            dir = fifos.dir().to_path_buf();
            for e in &pipes {
                let p = fifos.path(*e).expect("pipe edge has a fifo");
                let meta = std::fs::metadata(p).expect("fifo exists");
                use std::os::unix::fs::FileTypeExt;
                assert!(meta.file_type().is_fifo(), "{p:?} is a FIFO");
            }
        }
        assert!(!dir.exists(), "scratch dir removed on drop");
    }

    #[cfg(unix)]
    #[test]
    fn fifo_roundtrip_between_threads() {
        // A FIFO wired by this layer carries bytes between two
        // openers, like the process backend's children will.
        let r = region("cat in.txt | tr A-Z a-z > out.txt", 1);
        let e = r.internal_pipes().next().expect("pipe edge");
        let fifos = FifoDir::create(&r, &std::env::temp_dir(), "edge-rt").expect("fifos");
        let path = fifos.path(e).expect("path").to_path_buf();
        let writer_path = path.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut w = std::fs::OpenOptions::new()
                    .write(true)
                    .open(writer_path)
                    .expect("open fifo for write");
                w.write_all(b"through the fifo").expect("write");
            });
            let mut buf = Vec::new();
            std::fs::File::open(&path)
                .expect("open fifo for read")
                .read_to_end(&mut buf)
                .expect("read");
            assert_eq!(buf, b"through the fifo");
        });
    }
}
