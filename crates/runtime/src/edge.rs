//! The runtime I/O layer: turning a region's resolved plan edges into
//! transports.
//!
//! Lowering (PR 3) decides *what* every edge is — internal pipe,
//! boundary stdin/stdout, file, file segment. This module decides
//! *how* those edges move bytes, in the two ways the runtime knows:
//!
//! * [`MemEdges`] — in-process wiring for the `threads` backend:
//!   bounded ring [`crate::pipe`]s for internal edges, cursors over
//!   file/segment bytes, a shared buffer collecting region stdout;
//! * [`FifoDir`] — on-disk wiring for the `processes` backend: one
//!   named FIFO per internal pipe edge in a private scratch
//!   directory, created with `mkfifo(3)` and removed on drop — the
//!   same artifact the emitted shell script builds with `mkfifo`;
//! * [`SockEdgeWriter`] / [`SockEdgeReader`] — socket wiring for the
//!   `remote` backend: a worker streams a region's results (stdout
//!   chunks, output files, the terminal status) back to the
//!   coordinator in the [`crate::frame`] tagged format, so a dropped
//!   connection or half-written frame is detected by the same
//!   magic/length checks that guard `r_split` streams — never passed
//!   off as a short but plausible result.
//!
//! Keeping the wirings behind one module means stdin routing,
//! buffering discipline, and edge naming stay in one place instead of
//! being re-derived per backend.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use pash_core::plan::{EndpointKind, PlanEdgeId, PlanNode, RegionPlan};
use pash_coreutils::fs::Fs;

use crate::fault::{ArmedFault, FaultKind, FaultMode, FaultyWriter};
use crate::fileseg::read_segment;
use crate::pipe::{pipe_monitored, PipeMonitor};

/// Buffer in front of every edge writer: commands emit line-sized
/// writes, and each unbuffered write on a pipe edge is a lock
/// acquisition. Flush happens on drop at node exit.
pub const EDGE_WRITE_BUFFER: usize = 32 * 1024;

/// Wraps an edge writer in the standard edge buffer.
pub fn buffered(w: impl Write + Send + 'static) -> Box<dyn Write + Send> {
    Box::new(io::BufWriter::with_capacity(EDGE_WRITE_BUFFER, w))
}

/// A writer into a shared buffer (the region's stdout collector).
pub struct SharedVecWriter(pub Arc<Mutex<Vec<u8>>>);

impl Write for SharedVecWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().expect("stdout lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// In-process transports for one region's edges: each edge id maps to
/// a reader (consumer side), a writer (producer side), or both.
///
/// Built once per region by [`MemEdges::wire`]; the executor then
/// *takes* each node's endpoints as it spawns node threads, leaving
/// the map empty when the region is fully wired.
pub struct MemEdges {
    readers: HashMap<PlanEdgeId, Box<dyn Read + Send>>,
    writers: HashMap<PlanEdgeId, Box<dyn Write + Send>>,
    stdout: Arc<Mutex<Vec<u8>>>,
    monitors: Vec<PipeMonitor>,
}

impl MemEdges {
    /// Wires every edge of `r`: ring pipes for internal edges, the
    /// given `stdin` bytes for the primary boundary input, a shared
    /// collector for stdout edges, and `fs`-backed files/segments.
    pub fn wire(
        r: &RegionPlan,
        fs: &Arc<dyn Fs>,
        stdin: Vec<u8>,
        pipe_capacity: usize,
    ) -> io::Result<MemEdges> {
        MemEdges::wire_with(r, fs, stdin, pipe_capacity, None)
    }

    /// [`MemEdges::wire`] with an armed fault: the fault's target
    /// edge gets a [`FaultyWriter`] wrapper (stream faults) or fails
    /// to wire at all (the in-process analogue of a `mkfifo` error).
    pub fn wire_with(
        r: &RegionPlan,
        fs: &Arc<dyn Fs>,
        stdin: Vec<u8>,
        pipe_capacity: usize,
        fault: Option<&ArmedFault>,
    ) -> io::Result<MemEdges> {
        let stdout: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let mut readers: HashMap<PlanEdgeId, Box<dyn Read + Send>> = HashMap::new();
        let mut writers: HashMap<PlanEdgeId, Box<dyn Write + Send>> = HashMap::new();
        let mut monitors: Vec<PipeMonitor> = Vec::new();
        let mut stdin = Some(stdin);
        let fault_mode = |e: PlanEdgeId| -> Option<FaultMode> {
            fault.and_then(|a| {
                if a.edge == Some(e) && a.is_stream_fault() {
                    a.writer_mode()
                } else {
                    None
                }
            })
        };
        for (e, edge) in r.edges.iter().enumerate() {
            if let Some(a) = fault {
                if a.kind == FaultKind::MkfifoFail && a.edge == Some(e) {
                    return Err(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "injected edge wiring failure",
                    ));
                }
            }
            match &edge.kind {
                EndpointKind::Pipe => {
                    let (w, rd, m) = pipe_monitored(pipe_capacity);
                    monitors.push(m);
                    let w = match fault_mode(e) {
                        Some(mode) => buffered(FaultyWriter::new(w, mode)),
                        None => buffered(w),
                    };
                    writers.insert(e, w);
                    readers.insert(e, Box::new(rd));
                }
                EndpointKind::StdinPipe { primary } => {
                    let data = if *primary {
                        stdin.take().unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    readers.insert(e, Box::new(io::Cursor::new(data)));
                }
                EndpointKind::StdoutPipe => {
                    let w = SharedVecWriter(stdout.clone());
                    let w = match fault_mode(e) {
                        Some(mode) => buffered(FaultyWriter::new(w, mode)),
                        None => buffered(w),
                    };
                    writers.insert(e, w);
                }
                EndpointKind::InputFile(path) => {
                    readers.insert(e, fs.open(path)?);
                }
                EndpointKind::OutputFile(path) => {
                    let w = fs.create(path)?;
                    let w = match fault_mode(e) {
                        Some(mode) => buffered(FaultyWriter::new(w, mode)),
                        None => buffered(w),
                    };
                    writers.insert(e, w);
                }
                EndpointKind::InputSegment { path, part, of } => {
                    let data = read_segment(fs, path, *part, *of)?;
                    readers.insert(e, Box::new(io::Cursor::new(data)));
                }
                // Detached edges need no transport.
                EndpointKind::Detached => {}
            }
        }
        Ok(MemEdges {
            readers,
            writers,
            stdout,
            monitors,
        })
    }

    /// Takes the monitor handles of every internal pipe (for the
    /// region-deadline watchdog).
    pub fn take_monitors(&mut self) -> Vec<PipeMonitor> {
        std::mem::take(&mut self.monitors)
    }

    /// Takes the consumer endpoints of `node`'s inputs, in input
    /// order. Untracked edges read as empty streams.
    pub fn take_inputs(&mut self, node: &PlanNode) -> Vec<Box<dyn Read + Send>> {
        node.inputs
            .iter()
            .map(|&e| {
                self.readers
                    .remove(&e)
                    .unwrap_or_else(|| Box::new(io::Cursor::new(Vec::new())))
            })
            .collect()
    }

    /// Takes the producer endpoints of `node`'s outputs, in output
    /// order. Untracked edges discard their bytes.
    pub fn take_outputs(&mut self, node: &PlanNode) -> Vec<Box<dyn Write + Send>> {
        node.outputs
            .iter()
            .map(|&e| {
                self.writers
                    .remove(&e)
                    .unwrap_or_else(|| Box::new(io::sink()))
            })
            .collect()
    }

    /// The shared stdout collector (drain after every producer
    /// dropped its writer).
    pub fn stdout_handle(&self) -> Arc<Mutex<Vec<u8>>> {
        self.stdout.clone()
    }
}

/// Creates a FIFO special file (`mkfifo(3)`). The workspace vendors no
/// `libc`, but `std` already links the platform C library, so the one
/// symbol the FIFO wiring needs is declared directly.
#[cfg(unix)]
pub fn mkfifo(path: &Path) -> io::Result<()> {
    use std::os::unix::ffi::OsStrExt;
    extern "C" {
        fn mkfifo(path: *const std::os::raw::c_char, mode: u32) -> i32;
    }
    let c = std::ffi::CString::new(path.as_os_str().as_bytes())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "path contains NUL"))?;
    if unsafe { mkfifo(c.as_ptr().cast(), 0o600) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Unsupported off Unix: named FIFOs are a POSIX feature.
#[cfg(not(unix))]
pub fn mkfifo(_path: &Path) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "named FIFOs require a Unix platform",
    ))
}

/// On-disk wiring for one region: a private scratch directory holding
/// one named FIFO per internal pipe edge (`p<edge>`, mirroring the
/// emitted script's `$PASH_TMP/r<region>_p<edge>` naming).
///
/// The directory and its FIFOs are removed on drop.
pub struct FifoDir {
    dir: PathBuf,
    paths: HashMap<PlanEdgeId, PathBuf>,
}

impl FifoDir {
    /// Creates the scratch directory under `scratch_root` (tagged so
    /// concurrent regions/processes cannot collide) and a FIFO for
    /// every internal pipe edge of `r`.
    pub fn create(r: &RegionPlan, scratch_root: &Path, tag: &str) -> io::Result<FifoDir> {
        FifoDir::create_with(r, scratch_root, tag, None)
    }

    /// [`FifoDir::create`] with an armed fault: a
    /// [`FaultKind::MkfifoFail`] targeting one of the region's pipe
    /// edges makes that edge's `mkfifo` fail. The scratch directory
    /// is removed on any error, so a failed attempt leaks nothing.
    pub fn create_with(
        r: &RegionPlan,
        scratch_root: &Path,
        tag: &str,
        fault: Option<&ArmedFault>,
    ) -> io::Result<FifoDir> {
        let dir = scratch_root.join(format!("pash-fifo-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let mut paths = HashMap::new();
        for e in r.internal_pipes() {
            let injected = fault
                .map(|a| a.kind == FaultKind::MkfifoFail && a.edge == Some(e))
                .unwrap_or(false);
            let p = dir.join(format!("p{e}"));
            let res = if injected {
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected mkfifo failure",
                ))
            } else {
                mkfifo(&p)
            };
            if let Err(err) = res {
                let _ = std::fs::remove_dir_all(&dir);
                return Err(err);
            }
            paths.insert(e, p);
        }
        Ok(FifoDir { dir, paths })
    }

    /// The FIFO path backing edge `e`, if `e` is an internal pipe.
    pub fn path(&self, e: PlanEdgeId) -> Option<&Path> {
        self.paths.get(&e).map(|p| p.as_path())
    }

    /// The scratch directory itself.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for FifoDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Frame tag for a chunk of the region's stdout.
pub const SOCK_TAG_STDOUT: u64 = 1;
/// Frame tag for an output file (path + full contents).
pub const SOCK_TAG_FILE: u64 = 2;
/// Frame tag for the terminal status frame. A result stream without
/// one is torn, no matter how plausible the bytes so far looked.
pub const SOCK_TAG_STATUS: u64 = 3;
/// Frame tag for a structured execution error (class + message).
pub const SOCK_TAG_ERROR: u64 = 4;

/// One decoded message from a socket result stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockMsg {
    /// A chunk of the region's stdout, in order.
    Stdout(Vec<u8>),
    /// An output file the region produced: path and full contents.
    File(String, Vec<u8>),
    /// Terminal frame: overall status, per-node exit statuses, and
    /// the number of frames the writer sent before this one (checked
    /// against the reader's own count).
    Status {
        status: i32,
        statuses: Vec<(usize, i32)>,
        frames: u64,
    },
    /// Terminal frame: the worker hit a structured execution error.
    Error { transient: bool, message: String },
}

/// Worker side of a socket edge: streams a region's results to the
/// coordinator in the [`crate::frame`] tagged format. An optional cut
/// offset models a [`FaultKind::TornFrame`] injection — the stream is
/// truncated mid-frame at that byte and the writer reports a broken
/// pipe, exactly what a worker dying mid-send looks like on the wire.
pub struct SockEdgeWriter<W: Write> {
    inner: W,
    /// Bytes remaining before the injected tear, if armed.
    cut: Option<u64>,
    frames: u64,
}

impl<W: Write> SockEdgeWriter<W> {
    pub fn new(inner: W) -> SockEdgeWriter<W> {
        SockEdgeWriter {
            inner,
            cut: None,
            frames: 0,
        }
    }

    /// A writer that tears the stream after `offset` raw bytes.
    pub fn with_cut(inner: W, offset: u64) -> SockEdgeWriter<W> {
        SockEdgeWriter {
            inner,
            cut: Some(offset),
            frames: 0,
        }
    }

    fn write_cut(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(left) = &mut self.cut {
            if (*left as usize) < buf.len() {
                let keep = *left as usize;
                self.inner.write_all(&buf[..keep])?;
                let _ = self.inner.flush();
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected torn frame",
                ));
            }
            *left -= buf.len() as u64;
        }
        self.inner.write_all(buf)
    }

    fn emit(&mut self, tag: u64, payload: &[u8]) -> io::Result<()> {
        let mut framed = Vec::with_capacity(crate::frame::HEADER_LEN + payload.len());
        crate::frame::write_frame(&mut framed, tag, payload)?;
        self.write_cut(&framed)?;
        self.frames += 1;
        Ok(())
    }

    /// Streams one chunk of the region's stdout.
    pub fn stdout_chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.emit(SOCK_TAG_STDOUT, bytes)
    }

    /// Streams one output file (path + full contents).
    pub fn output_file(&mut self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(4 + path.len() + bytes.len());
        payload.extend_from_slice(&(path.len() as u32).to_le_bytes());
        payload.extend_from_slice(path.as_bytes());
        payload.extend_from_slice(bytes);
        self.emit(SOCK_TAG_FILE, &payload)
    }

    /// Terminates the stream with the region's statuses and flushes.
    pub fn status(&mut self, status: i32, statuses: &[(usize, i32)]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(16 + statuses.len() * 8);
        payload.extend_from_slice(&self.frames.to_le_bytes());
        payload.extend_from_slice(&status.to_le_bytes());
        payload.extend_from_slice(&(statuses.len() as u32).to_le_bytes());
        for (node, st) in statuses {
            payload.extend_from_slice(&(*node as u32).to_le_bytes());
            payload.extend_from_slice(&st.to_le_bytes());
        }
        self.emit(SOCK_TAG_STATUS, &payload)?;
        self.inner.flush()
    }

    /// Terminates the stream with a structured error and flushes.
    pub fn error(&mut self, transient: bool, message: &str) -> io::Result<()> {
        let mut payload = Vec::with_capacity(1 + message.len());
        payload.push(if transient { 0 } else { 1 });
        payload.extend_from_slice(message.as_bytes());
        self.emit(SOCK_TAG_ERROR, &payload)?;
        self.inner.flush()
    }
}

/// Coordinator side of a socket edge: decodes the tagged result
/// stream a worker sends. Truncation, bad magic, and oversized frames
/// surface as `InvalidData` from the underlying [`crate::frame`]
/// reader; a clean EOF before the terminal frame, an unknown tag, or
/// a frame-count mismatch in the status frame are reported the same
/// way — the caller treats all of them as a torn (transient) result.
pub struct SockEdgeReader<R: Read> {
    inner: crate::frame::FrameReader<R>,
    seen: u64,
}

fn sock_bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl<R: Read> SockEdgeReader<R> {
    pub fn new(inner: R) -> SockEdgeReader<R> {
        SockEdgeReader {
            inner: crate::frame::FrameReader::new(inner),
            seen: 0,
        }
    }

    /// The next message, or `Ok(None)` on clean EOF. EOF is only
    /// clean *after* a terminal frame — callers that see `Ok(None)`
    /// before [`SockMsg::Status`]/[`SockMsg::Error`] must treat the
    /// result as torn.
    pub fn next(&mut self) -> io::Result<Option<SockMsg>> {
        let Some((tag, payload)) = self.inner.next_frame()? else {
            return Ok(None);
        };
        let before = self.seen;
        self.seen += 1;
        match tag {
            SOCK_TAG_STDOUT => Ok(Some(SockMsg::Stdout(payload))),
            SOCK_TAG_FILE => {
                if payload.len() < 4 {
                    return Err(sock_bad("file frame too short"));
                }
                let plen = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
                if payload.len() < 4 + plen {
                    return Err(sock_bad("file frame path overruns payload"));
                }
                let path = std::str::from_utf8(&payload[4..4 + plen])
                    .map_err(|_| sock_bad("file frame path is not utf-8"))?
                    .to_string();
                Ok(Some(SockMsg::File(path, payload[4 + plen..].to_vec())))
            }
            SOCK_TAG_STATUS => {
                if payload.len() < 16 {
                    return Err(sock_bad("status frame too short"));
                }
                let frames = u64::from_le_bytes(payload[..8].try_into().unwrap());
                if frames != before {
                    return Err(sock_bad(format!(
                        "status frame count mismatch: writer sent {frames}, reader saw {before}"
                    )));
                }
                let status = i32::from_le_bytes(payload[8..12].try_into().unwrap());
                let n = u32::from_le_bytes(payload[12..16].try_into().unwrap()) as usize;
                if payload.len() != 16 + n * 8 {
                    return Err(sock_bad("status frame length mismatch"));
                }
                let mut statuses = Vec::with_capacity(n);
                for i in 0..n {
                    let at = 16 + i * 8;
                    let node = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
                    let st = i32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap());
                    statuses.push((node as usize, st));
                }
                Ok(Some(SockMsg::Status {
                    status,
                    statuses,
                    frames,
                }))
            }
            SOCK_TAG_ERROR => {
                if payload.is_empty() {
                    return Err(sock_bad("error frame too short"));
                }
                let message = String::from_utf8_lossy(&payload[1..]).into_owned();
                Ok(Some(SockMsg::Error {
                    transient: payload[0] == 0,
                    message,
                }))
            }
            other => Err(sock_bad(format!("unknown result frame tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};
    use pash_core::plan::PlanStep;
    use pash_coreutils::fs::MemFs;

    fn region(src: &str, width: usize) -> RegionPlan {
        let compiled = compile(
            src,
            &PashConfig {
                width,
                ..Default::default()
            },
        )
        .expect("compile");
        compiled
            .plan
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Region(r) => Some(r.clone()),
                _ => None,
            })
            .expect("region")
    }

    #[test]
    fn mem_wiring_covers_all_live_edges() {
        let r = region("cat in.txt | tr A-Z a-z | sort > out.txt", 2);
        let fs = MemFs::new();
        fs.add("in.txt", b"b\na\n".to_vec());
        let fs: Arc<dyn Fs> = Arc::new(fs);
        let mut edges = MemEdges::wire(&r, &fs, Vec::new(), 1024).expect("wire");
        // Taking every node's endpoints drains the maps completely.
        for node in &r.nodes {
            let ins = edges.take_inputs(node);
            let outs = edges.take_outputs(node);
            assert_eq!(ins.len(), node.inputs.len());
            assert_eq!(outs.len(), node.outputs.len());
        }
        assert!(edges.readers.is_empty(), "all readers taken");
        assert!(edges.writers.is_empty(), "all writers taken");
    }

    #[test]
    fn mem_wiring_missing_input_file_errors() {
        let r = region("cat nope.txt | sort > out.txt", 1);
        let fs: Arc<dyn Fs> = Arc::new(MemFs::new());
        assert!(MemEdges::wire(&r, &fs, Vec::new(), 1024).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn fifo_dir_creates_and_cleans_up() {
        let r = region("cat in.txt | tr A-Z a-z | sort > out.txt", 2);
        let pipes: Vec<_> = r.internal_pipes().collect();
        assert!(!pipes.is_empty());
        let dir;
        {
            let fifos = FifoDir::create(&r, &std::env::temp_dir(), "edge-test").expect("fifos");
            dir = fifos.dir().to_path_buf();
            for e in &pipes {
                let p = fifos.path(*e).expect("pipe edge has a fifo");
                let meta = std::fs::metadata(p).expect("fifo exists");
                use std::os::unix::fs::FileTypeExt;
                assert!(meta.file_type().is_fifo(), "{p:?} is a FIFO");
            }
        }
        assert!(!dir.exists(), "scratch dir removed on drop");
    }

    #[cfg(unix)]
    #[test]
    fn fifo_roundtrip_between_threads() {
        // A FIFO wired by this layer carries bytes between two
        // openers, like the process backend's children will.
        let r = region("cat in.txt | tr A-Z a-z > out.txt", 1);
        let e = r.internal_pipes().next().expect("pipe edge");
        let fifos = FifoDir::create(&r, &std::env::temp_dir(), "edge-rt").expect("fifos");
        let path = fifos.path(e).expect("path").to_path_buf();
        let writer_path = path.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut w = std::fs::OpenOptions::new()
                    .write(true)
                    .open(writer_path)
                    .expect("open fifo for write");
                w.write_all(b"through the fifo").expect("write");
            });
            let mut buf = Vec::new();
            std::fs::File::open(&path)
                .expect("open fifo for read")
                .read_to_end(&mut buf)
                .expect("read");
            assert_eq!(buf, b"through the fifo");
        });
    }

    #[test]
    fn sock_edge_round_trips_results() {
        let mut wire = Vec::new();
        {
            let mut w = SockEdgeWriter::new(&mut wire);
            w.stdout_chunk(b"hello ").expect("stdout");
            w.stdout_chunk(b"world\n").expect("stdout");
            w.output_file("out.txt", b"file bytes").expect("file");
            w.status(0, &[(2, 0), (3, 1)]).expect("status");
        }
        let mut r = SockEdgeReader::new(wire.as_slice());
        assert_eq!(r.next().unwrap(), Some(SockMsg::Stdout(b"hello ".to_vec())));
        assert_eq!(
            r.next().unwrap(),
            Some(SockMsg::Stdout(b"world\n".to_vec()))
        );
        assert_eq!(
            r.next().unwrap(),
            Some(SockMsg::File("out.txt".to_string(), b"file bytes".to_vec()))
        );
        assert_eq!(
            r.next().unwrap(),
            Some(SockMsg::Status {
                status: 0,
                statuses: vec![(2, 0), (3, 1)],
                frames: 3,
            })
        );
        assert_eq!(r.next().unwrap(), None, "clean EOF after terminal frame");
    }

    #[test]
    fn sock_edge_detects_torn_and_miscounted_streams() {
        // A cut mid-frame surfaces on the writer as a broken pipe and
        // on the reader as InvalidData — never as a short-but-valid
        // result.
        let mut wire = Vec::new();
        {
            // First frame is 16 header + 16 payload = 32 bytes; a
            // cut at 40 lands mid-way through the status frame.
            let mut w = SockEdgeWriter::with_cut(&mut wire, 40);
            w.stdout_chunk(b"0123456789abcdef").expect("first fits");
            let err = w.status(0, &[]).expect_err("cut fires");
            assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        }
        let mut r = SockEdgeReader::new(wire.as_slice());
        assert!(matches!(r.next(), Ok(Some(SockMsg::Stdout(_)))));
        let err = r.next().expect_err("torn frame detected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // EOF before any terminal frame is visible to the caller as
        // Ok(None) with no Status/Error seen.
        let mut wire = Vec::new();
        SockEdgeWriter::new(&mut wire)
            .stdout_chunk(b"partial")
            .expect("chunk");
        let mut r = SockEdgeReader::new(wire.as_slice());
        assert!(matches!(r.next(), Ok(Some(SockMsg::Stdout(_)))));
        assert!(matches!(r.next(), Ok(None)), "no terminal frame");

        // A status frame whose count disagrees with what the reader
        // saw is rejected: a replayed or spliced stream cannot pass.
        let mut wire = Vec::new();
        {
            let mut w = SockEdgeWriter::new(&mut wire);
            w.frames = 7; // lie about how many frames preceded
            w.status(0, &[]).expect("status");
        }
        let mut r = SockEdgeReader::new(wire.as_slice());
        let err = r.next().expect_err("count mismatch detected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Worker-side structured errors arrive intact.
        let mut wire = Vec::new();
        {
            let mut w = SockEdgeWriter::new(&mut wire);
            w.error(true, "exec node 3 died").expect("error frame");
        }
        let mut r = SockEdgeReader::new(wire.as_slice());
        assert_eq!(
            r.next().unwrap(),
            Some(SockMsg::Error {
                transient: true,
                message: "exec node 3 died".to_string(),
            })
        );
    }
}
