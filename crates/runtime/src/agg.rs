//! The aggregator library (§5.2, "Aggregator Implementations").
//!
//! Aggregators consume *multiple ordered input streams* — the partial
//! outputs of parallel map copies — and combine them into the output
//! the sequential command would have produced. They "apply pure
//! functions at the boundaries of input streams (with the exception of
//! sort that has to interleave inputs)".
//!
//! Inputs are pulled through [`LineScanner`]s — flat buffers refilled
//! in bulk with borrowed line slices — instead of per-line `BufRead`
//! calls (the `agg` series in the dataplane bench tracks this path).

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::Arc;

use pash_coreutils::cmd::sort::parse_args as parse_sort_args;
use pash_coreutils::cmd::wc;
use pash_coreutils::fs::Fs;
use pash_coreutils::lines::write_line;
use pash_coreutils::Registry;

use crate::frame::FrameReader;
use crate::scan::LineScanner;

/// A boxed ordered input stream.
pub type AggInput = Box<dyn Read + Send>;

/// Runs the aggregator named by `argv[0]` over ordered inputs.
///
/// `head`/`tail` re-applied over the concatenation are also accepted
/// (their own command implementations serve as their aggregators).
pub fn run_aggregator(
    argv: &[String],
    inputs: Vec<AggInput>,
    output: &mut dyn Write,
    registry: &Registry,
    fs: Arc<dyn Fs>,
) -> io::Result<i32> {
    let (name, args) = argv
        .split_first()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "empty aggregator argv"))?;
    match name.as_str() {
        "pash-agg-sort" => agg_sort(args, inputs, output),
        "pash-agg-uniq" => agg_uniq(inputs, output),
        "pash-agg-uniq-c" => agg_uniq_count(inputs, output),
        "pash-agg-wc" => agg_wc(args, inputs, output),
        "pash-agg-sum" => agg_sum(inputs, output),
        "pash-agg-tac" => agg_tac(inputs, output),
        "pash-agg-bigram" => agg_bigram(inputs, output),
        "pash-agg-reorder" => agg_reorder(inputs, output),
        "pash-agg-frame-merge" => agg_frame_merge(args, inputs, output),
        // Re-applied commands (e.g. `head -n 1`) run over the ordered
        // concatenation of the inputs.
        _ => {
            let cmd = registry.get(name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("unknown aggregator `{name}`"),
                )
            })?;
            let mut stdin = io::BufReader::new(crate::pipe::MultiReader::new(inputs));
            let mut stderr = io::sink();
            let mut cio = pash_coreutils::CmdIo {
                stdin: &mut stdin,
                stdout: output,
                stderr: &mut stderr,
                fs,
                registry,
            };
            cmd.run(&args.to_vec(), &mut cio)
        }
    }
}

/// The current head line of one merge input (buffer reused across
/// lines; `live == false` means the stream is exhausted).
struct Head {
    buf: Vec<u8>,
    live: bool,
}

/// Pulls the next line of `sc` into `head`.
fn advance(sc: &mut LineScanner<AggInput>, head: &mut Head) -> io::Result<()> {
    match sc.next_line()? {
        Some(line) => {
            head.buf.clear();
            head.buf.extend_from_slice(line);
            head.live = true;
        }
        None => head.live = false,
    }
    Ok(())
}

/// A loser tree (tournament tree) over `k` merge inputs.
///
/// The previous merge scanned all `k` heads per output line — O(k)
/// comparisons per line, which dominates at high widths. A loser tree
/// keeps the losers of past matches in internal nodes, so after
/// advancing the winning stream only the path from its leaf to the
/// root is replayed: O(log k) comparisons per line.
///
/// Indices are stream ids; `EMPTY` marks a match slot not yet played.
/// Ties break toward the lower stream id, preserving the stable
/// lowest-input-first order of the linear scan it replaces.
struct LoserTree {
    /// `tree[1..k]` hold losers; `tree[0]` is unused. Leaf `i`'s
    /// parent is `(i + k) / 2`.
    tree: Vec<usize>,
    /// Current overall winner (a stream id, or `EMPTY` before build).
    winner: usize,
    k: usize,
}

const EMPTY: usize = usize::MAX;

impl LoserTree {
    /// Builds the tree by replaying every leaf once.
    fn build(k: usize, mut beats: impl FnMut(usize, usize) -> bool) -> LoserTree {
        let mut t = LoserTree {
            tree: vec![EMPTY; k.max(1)],
            winner: EMPTY,
            k,
        };
        for i in 0..k {
            t.replay(i, &mut beats);
        }
        t
    }

    /// Replays the path from leaf `i` to the root after stream `i`
    /// changed (new head line, or exhausted).
    ///
    /// During the build, a climber reaching a not-yet-played match
    /// slot deposits itself there and waits for the sibling subtree's
    /// winner (sequential insertion guarantees the last leaf's whole
    /// path is played, so the build always crowns a winner). After the
    /// build every slot is filled and a replay runs the full path.
    fn replay(&mut self, i: usize, beats: &mut impl FnMut(usize, usize) -> bool) {
        let mut w = i;
        let mut slot = (i + self.k) / 2;
        while slot > 0 {
            let held = self.tree[slot];
            if held == EMPTY {
                self.tree[slot] = w;
                return;
            }
            // The slot keeps the loser; the winner moves up.
            if beats(held, w) {
                self.tree[slot] = w;
                w = held;
            }
            slot /= 2;
        }
        self.winner = w;
    }
}

/// `sort -m`: streaming k-way merge with the sequential comparator,
/// driven by a [`LoserTree`].
fn agg_sort(args: &[String], inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    let parsed =
        parse_sort_args(args).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let unique = parsed.spec.unique;
    let spec = parsed.spec;
    let mut scanners: Vec<LineScanner<AggInput>> =
        inputs.into_iter().map(LineScanner::new).collect();
    let mut heads: Vec<Head> = Vec::with_capacity(scanners.len());
    for sc in scanners.iter_mut() {
        let mut head = Head {
            buf: Vec::new(),
            live: false,
        };
        advance(sc, &mut head)?;
        heads.push(head);
    }
    let k = heads.len();
    // Does stream `a` come before stream `b`? Exhausted streams lose;
    // compare-equal heads break toward the lower id (stability).
    let beats = |heads: &[Head], a: usize, b: usize| -> bool {
        match (heads[a].live, heads[b].live) {
            (false, _) => false,
            (true, false) => true,
            (true, true) => match spec.compare(&heads[a].buf, &heads[b].buf) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a < b,
            },
        }
    };
    let mut tree = LoserTree::build(k, |a, b| beats(&heads, a, b));
    // For `sort -u`, duplicates may also straddle input boundaries.
    let mut last_emitted: Vec<u8> = Vec::new();
    let mut have_last = false;
    // Merged lines collect into a local staging buffer flushed in
    // large chunks, keeping the per-line cost off the dyn writer (at
    // high fan-in the writer call dominated the replay itself).
    const FLUSH: usize = 64 * 1024;
    let mut staged: Vec<u8> = Vec::with_capacity(FLUSH + 4096);
    // Run fast path: in a tournament, the second-best lost directly
    // to the winner, so it sits among the losers on the winner's
    // root path. When the same stream wins twice running, cache the
    // best of those losers and keep emitting from the winner with
    // one comparison per line — no tree replay — until its head
    // stops beating the cached challenger. Computed lazily (only on
    // a repeat win) so interleaved streams pay nothing extra.
    let mut challenger = EMPTY;
    while tree.winner != EMPTY && heads[tree.winner].live {
        let b = tree.winner;
        let suppress = unique && have_last && spec.key_equal(&last_emitted, &heads[b].buf);
        if !suppress {
            staged.extend_from_slice(&heads[b].buf);
            staged.push(b'\n');
            if staged.len() >= FLUSH {
                output.write_all(&staged)?;
                staged.clear();
            }
            if unique {
                last_emitted.clear();
                last_emitted.extend_from_slice(&heads[b].buf);
                have_last = true;
            }
        }
        advance(&mut scanners[b], &mut heads[b])?;
        if challenger != EMPTY {
            if heads[b].live && beats(&heads, b, challenger) {
                continue;
            }
            challenger = EMPTY;
        }
        tree.replay(b, &mut |a, b| beats(&heads, a, b));
        if tree.winner == b && k >= 2 {
            let mut best = EMPTY;
            let mut slot = (b + k) / 2;
            while slot > 0 {
                let held = tree.tree[slot];
                if held != EMPTY && (best == EMPTY || beats(&heads, held, best)) {
                    best = held;
                }
                slot /= 2;
            }
            challenger = best;
        }
    }
    output.write_all(&staged)?;
    Ok(0)
}

/// `uniq`: concatenate, dropping a duplicate at each boundary.
fn agg_uniq(inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    let mut last: Vec<u8> = Vec::new();
    let mut have_last = false;
    for input in inputs {
        let mut sc = LineScanner::new(input);
        while let Some(line) = sc.next_line()? {
            if !(have_last && last.as_slice() == line) {
                write_line(output, line)?;
            }
            last.clear();
            last.extend_from_slice(line);
            have_last = true;
        }
    }
    Ok(0)
}

/// `uniq -c`: merge boundary counts of equal adjacent groups.
fn agg_uniq_count(inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    // Pending group: (count, text).
    let mut pending: Option<(u64, Vec<u8>)> = None;
    for input in inputs {
        let mut sc = LineScanner::new(input);
        while let Some(line) = sc.next_line()? {
            let (count, text) = parse_count_line(line)?;
            match &mut pending {
                Some((c, t)) if t.as_slice() == text => *c += count,
                _ => {
                    if let Some((c, t)) = pending.take() {
                        write_count_line(output, c, &t)?;
                    }
                    pending = Some((count, text.to_vec()));
                }
            }
        }
    }
    if let Some((c, t)) = pending {
        write_count_line(output, c, &t)?;
    }
    Ok(0)
}

fn parse_count_line(line: &[u8]) -> io::Result<(u64, &[u8])> {
    // `uniq -c` format: right-aligned count, one space, text.
    let s = line;
    let mut i = 0;
    while i < s.len() && s[i] == b' ' {
        i += 1;
    }
    let start = i;
    while i < s.len() && s[i].is_ascii_digit() {
        i += 1;
    }
    let count: u64 = std::str::from_utf8(&s[start..i])
        .ok()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed uniq -c line"))?;
    let text = if i < s.len() && s[i] == b' ' {
        &s[i + 1..]
    } else {
        &s[i..]
    };
    Ok((count, text))
}

fn write_count_line(output: &mut dyn Write, count: u64, text: &[u8]) -> io::Result<()> {
    write!(output, "{count:7} ")?;
    write_line(output, text)
}

/// `wc`: sum per-part count vectors.
fn agg_wc(args: &[String], inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    let (sel, _) = wc::parse_selection(args);
    let mut total = [0u64; 3];
    for input in inputs {
        let mut sc = LineScanner::new(input);
        while let Some(line) = sc.next_line()? {
            let nums: Vec<u64> = std::str::from_utf8(line)
                .unwrap_or("")
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect();
            for (slot, v) in total.iter_mut().zip(&nums) {
                *slot += v;
            }
        }
    }
    let counts = wc_counts_from(&sel, &total);
    writeln!(output, "{}", sel.format(&counts, None))?;
    Ok(0)
}

fn wc_counts_from(sel: &wc::Selection, total: &[u64; 3]) -> wc::Counts {
    // The summed columns appear in canonical order for the selection.
    let mut it = total.iter();
    let mut counts = wc::Counts::default();
    if sel.lines {
        counts.lines = *it.next().expect("column");
    }
    if sel.words {
        counts.words = *it.next().expect("column");
    }
    if sel.bytes {
        counts.bytes = *it.next().expect("column");
    }
    counts
}

/// `grep -c` and friends: sum one integer per input.
fn agg_sum(inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    let mut total: i64 = 0;
    for input in inputs {
        let mut sc = LineScanner::new(input);
        while let Some(line) = sc.next_line()? {
            total += std::str::from_utf8(line)
                .unwrap_or("0")
                .trim()
                .parse::<i64>()
                .unwrap_or(0);
        }
    }
    writeln!(output, "{total}")?;
    Ok(0)
}

/// `tac`: consume stream descriptors in reverse order.
fn agg_tac(inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    for mut input in inputs.into_iter().rev() {
        let mut buf = [0u8; 64 * 1024];
        loop {
            let n = input.read(&mut buf)?;
            if n == 0 {
                break;
            }
            output.write_all(&buf[..n])?;
        }
    }
    Ok(0)
}

/// The Bi-grams-opt custom aggregator: stitch `bigrams-aux` chunks.
///
/// Each chunk starts with a `\x01F\t<first-word>` marker and ends with
/// `\x01L\t<last-word>`; at every chunk boundary the pair
/// `<last of i> <first of i+1>` was lost by the split and is
/// re-inserted here.
fn agg_bigram(inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    let mut prev_last: Option<Vec<u8>> = None;
    for input in inputs {
        let mut sc = LineScanner::new(input);
        let mut first_marker: Option<Vec<u8>> = None;
        let mut last_marker: Option<Vec<u8>> = None;
        while let Some(line) = sc.next_line()? {
            if let Some(rest) = line.strip_prefix(b"\x01F\t") {
                first_marker = Some(rest.to_vec());
                // Boundary pair with the previous chunk.
                if let Some(last) = &prev_last {
                    let mut pair = last.clone();
                    pair.push(b' ');
                    pair.extend_from_slice(rest);
                    write_line(output, &pair)?;
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix(b"\x01L\t") {
                last_marker = Some(rest.to_vec());
                continue;
            }
            write_line(output, line)?;
        }
        if let Some(last) = last_marker {
            prev_last = Some(last);
        } else if first_marker.is_none() {
            // Empty chunk: boundary carries over unchanged.
        }
    }
    Ok(0)
}

/// Reads `r_split` frames from `k` inputs and hands each payload to
/// `sink` in tag order.
///
/// The splitter deals tag `t` to worker `t mod k` and framed workers
/// emit exactly one output frame per input frame, so input `i`
/// carries tags `i, i+k, i+2k, …` in order. Reading by rotation keeps
/// the reorder buffer bounded: at most `k − 1` blocks are pending at
/// any time on a conforming stream.
///
/// A tag that arrives twice, or a stream that can no longer deliver
/// the next expected tag (its owner hit EOF while later tags are
/// already buffered), is an `InvalidData` error: a missing or
/// duplicated block means a worker or edge failed, and emitting the
/// remainder would silently reorder or drop bytes. Failing fast here
/// — instead of blocking on inputs that will never produce the gap —
/// is what lets the supervisor detect a lost block and recover.
fn for_each_frame_in_tag_order(
    inputs: Vec<AggInput>,
    sink: &mut impl FnMut(&[u8]) -> io::Result<()>,
) -> io::Result<()> {
    fn missing_tag(next: u64) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("r_split stream ended with tag {next} missing"),
        )
    }
    let mut readers: Vec<Option<FrameReader<AggInput>>> = inputs
        .into_iter()
        .map(|i| Some(FrameReader::new(i)))
        .collect();
    let k = readers.len();
    if k == 0 {
        return Ok(());
    }
    let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut next: u64 = 0;
    let mut live = k;
    while live > 0 {
        // Pull from the input that owns the next expected tag; once
        // it is exhausted, drain whichever input is still live.
        let owner = (next % k as u64) as usize;
        let pick = if readers[owner].is_some() {
            owner
        } else {
            // Tags are dense and owner-exclusive, so with the owner
            // exhausted, `next` can only already be buffered; a
            // buffered tag beyond it proves the stream lost a block.
            if !pending.contains_key(&next) && pending.keys().next_back().is_some_and(|&t| t > next)
            {
                return Err(missing_tag(next));
            }
            readers
                .iter()
                .position(|r| r.is_some())
                .expect("a live reader while live > 0")
        };
        match readers[pick].as_mut().expect("picked live").next_frame()? {
            Some((tag, payload)) => {
                // `tag < next` means the tag was already emitted;
                // both shapes are one lost-or-replayed block.
                if tag < next || pending.insert(tag, payload).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("duplicate r_split tag {tag}"),
                    ));
                }
            }
            None => {
                readers[pick] = None;
                live -= 1;
            }
        }
        while let Some(payload) = pending.remove(&next) {
            sink(&payload)?;
            next += 1;
        }
    }
    if !pending.is_empty() {
        // Every input ended but a gap remains before the buffered
        // tail: the block tagged `next` never arrived.
        return Err(missing_tag(next));
    }
    Ok(())
}

/// `pash-agg-reorder`: strips `r_split` frames and writes payloads
/// back in tag order (see [`for_each_frame_in_tag_order`]).
fn agg_reorder(inputs: Vec<AggInput>, output: &mut dyn Write) -> io::Result<i32> {
    for_each_frame_in_tag_order(inputs, &mut |payload| output.write_all(payload))?;
    Ok(0)
}

/// The lines of one frame payload (final line with or without `\n`).
fn payload_lines(payload: &[u8]) -> impl Iterator<Item = &[u8]> {
    payload
        .split_inclusive(|&b| b == b'\n')
        .map(|l| l.strip_suffix(b"\n").unwrap_or(l))
}

/// The incremental boundary folds `pash-agg-frame-merge` can wrap:
/// each consumes per-block command output one tag-ordered line at a
/// time and keeps only the open group, so memory stays bounded no
/// matter how many blocks the splitter dealt.
enum FrameFold {
    /// `uniq`: drop a line equal to the previously emitted one.
    Uniq { last: Option<Vec<u8>> },
    /// `uniq -c`: merge counts of equal adjacent groups.
    UniqCount { open: Option<(u64, Vec<u8>)> },
}

impl FrameFold {
    fn for_inner(argv: &[String]) -> io::Result<FrameFold> {
        match argv.first().map(String::as_str) {
            Some("pash-agg-uniq") => Ok(FrameFold::Uniq { last: None }),
            Some("pash-agg-uniq-c") => Ok(FrameFold::UniqCount { open: None }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("pash-agg-frame-merge cannot wrap {other:?}"),
            )),
        }
    }

    fn feed(&mut self, line: &[u8], output: &mut dyn Write) -> io::Result<()> {
        match self {
            FrameFold::Uniq { last } => {
                if last.as_deref() != Some(line) {
                    write_line(output, line)?;
                }
                match last {
                    Some(buf) => {
                        buf.clear();
                        buf.extend_from_slice(line);
                    }
                    None => *last = Some(line.to_vec()),
                }
            }
            FrameFold::UniqCount { open } => {
                let (count, text) = parse_count_line(line)?;
                match open {
                    Some((c, t)) if t.as_slice() == text => *c += count,
                    _ => {
                        if let Some((c, t)) = open.take() {
                            write_count_line(output, c, &t)?;
                        }
                        *open = Some((count, text.to_vec()));
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self, output: &mut dyn Write) -> io::Result<()> {
        if let FrameFold::UniqCount { open: Some((c, t)) } = self {
            write_count_line(output, c, &t)?;
        }
        Ok(())
    }
}

/// `pash-agg-frame-merge INNER…`: the framed-pure combiner.
///
/// Parallel class-P copies ran the command once per tagged round-robin
/// block, so each output frame is the command's result on one block.
/// Restoring tag order and re-applying the command's boundary fold
/// over *every* adjacent frame pair — including frames from the same
/// worker — reconstructs the sequential output, because the wrapped
/// aggregators satisfy `f(x·x') = fold(f(x), f(x'))` exactly.
fn agg_frame_merge(
    args: &[String],
    inputs: Vec<AggInput>,
    output: &mut dyn Write,
) -> io::Result<i32> {
    let mut fold = FrameFold::for_inner(args)?;
    for_each_frame_in_tag_order(inputs, &mut |payload| {
        for line in payload_lines(payload) {
            fold.feed(line, output)?;
        }
        Ok(())
    })?;
    fold.finish(output)?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_coreutils::fs::MemFs;

    fn run(argv: &[&str], inputs: &[&str]) -> String {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let inputs: Vec<AggInput> = inputs
            .iter()
            .map(|s| Box::new(io::Cursor::new(s.as_bytes().to_vec())) as AggInput)
            .collect();
        let mut out = Vec::new();
        let reg = Registry::standard();
        run_aggregator(&argv, inputs, &mut out, &reg, Arc::new(MemFs::new())).expect("agg");
        String::from_utf8(out).expect("utf8")
    }

    #[test]
    fn sort_merge_two_runs() {
        assert_eq!(
            run(&["pash-agg-sort"], &["a\nc\ne\n", "b\nd\n"]),
            "a\nb\nc\nd\ne\n"
        );
    }

    #[test]
    fn sort_merge_numeric_reverse() {
        assert_eq!(
            run(&["pash-agg-sort", "-rn"], &["30\n20\n", "25\n5\n"]),
            "30\n25\n20\n5\n"
        );
    }

    #[test]
    fn sort_merge_by_key() {
        assert_eq!(
            run(
                &["pash-agg-sort", "-k", "2", "-n"],
                &["x 1\ny 5\n", "z 3\n"]
            ),
            "x 1\nz 3\ny 5\n"
        );
    }

    #[test]
    fn sort_merge_empty_inputs() {
        assert_eq!(run(&["pash-agg-sort"], &["", "a\n", ""]), "a\n");
    }

    #[test]
    fn sort_merge_unique_across_boundaries() {
        assert_eq!(
            run(&["pash-agg-sort", "-u"], &["a\nb\n", "b\nc\n"]),
            "a\nb\nc\n"
        );
    }

    #[test]
    fn uniq_boundary_duplicate_collapsed() {
        // "b" straddles the boundary: must appear once.
        assert_eq!(run(&["pash-agg-uniq"], &["a\nb\n", "b\nc\n"]), "a\nb\nc\n");
    }

    #[test]
    fn uniq_keeps_inner_structure() {
        assert_eq!(
            run(&["pash-agg-uniq"], &["a\nb\na\n", "a\nc\n"]),
            "a\nb\na\nc\n"
        );
    }

    #[test]
    fn uniq_count_merges_boundary() {
        let out = run(
            &["pash-agg-uniq-c"],
            &["      2 a\n      1 b\n", "      3 b\n      1 c\n"],
        );
        assert_eq!(out, "      2 a\n      4 b\n      1 c\n");
    }

    #[test]
    fn wc_sums_columns() {
        let out = run(
            &["pash-agg-wc", "-lw"],
            &["      2       5\n", "      3       7\n"],
        );
        let cols: Vec<&str> = out.split_whitespace().collect();
        assert_eq!(cols, vec!["5", "12"]);
    }

    #[test]
    fn sum_adds_counts() {
        assert_eq!(run(&["pash-agg-sum"], &["3\n", "4\n", "0\n"]), "7\n");
    }

    #[test]
    fn tac_reverse_stream_order() {
        assert_eq!(
            run(&["pash-agg-tac"], &["c\nb\n", "e\nd\n"]),
            "e\nd\nc\nb\n"
        );
    }

    #[test]
    fn head_as_aggregator() {
        assert_eq!(run(&["head", "-n", "2"], &["1\n2\n", "3\n"]), "1\n2\n");
    }

    #[test]
    fn bigram_stitches_boundary() {
        // Chunks from `bigrams-aux` over [a b c] and [d e].
        let c1 = "\u{1}F\ta\na b\nb c\n\u{1}L\tc\n";
        let c2 = "\u{1}F\td\nd e\n\u{1}L\te\n";
        assert_eq!(run(&["pash-agg-bigram"], &[c1, c2]), "a b\nb c\nc d\nd e\n");
    }

    #[test]
    fn bigram_single_chunk() {
        let c1 = "\u{1}F\ta\na b\n\u{1}L\tb\n";
        assert_eq!(run(&["pash-agg-bigram"], &[c1]), "a b\n");
    }

    #[test]
    fn unknown_aggregator_errors() {
        let argv = vec!["pash-agg-nope".to_string()];
        let mut out = Vec::new();
        let reg = Registry::standard();
        let res = run_aggregator(&argv, vec![], &mut out, &reg, Arc::new(MemFs::new()));
        assert!(res.is_err());
    }

    #[test]
    fn sort_merge_no_inputs_is_empty() {
        assert_eq!(run(&["pash-agg-sort"], &[]), "");
    }

    #[test]
    fn sort_merge_single_input_passthrough() {
        assert_eq!(run(&["pash-agg-sort"], &["a\nb\nc\n"]), "a\nb\nc\n");
    }

    #[test]
    fn sort_merge_wide_odd_fanin() {
        // Nine inputs (not a power of two) with skewed lengths and
        // early exhaustion: the loser tree's replay path must stay
        // correct as streams die at different times.
        let inputs = [
            "a\nj\ns\n",
            "",
            "b\nk\n",
            "c\n",
            "d\nl\nt\nx\n",
            "e\n",
            "f\nm\n",
            "g\nn\nu\n",
            "h\n",
        ];
        let merged = run(&["pash-agg-sort"], &inputs);
        let mut all: Vec<&str> = inputs.iter().flat_map(|s| s.lines()).collect();
        all.sort_unstable();
        let expected: String = all.iter().map(|l| format!("{l}\n")).collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn sort_merge_equal_lines_stay_stable() {
        // Compare-equal heads must drain lowest-input-first, like the
        // linear scan did (ties broken by stream id).
        assert_eq!(
            run(&["pash-agg-sort"], &["x\nx\n", "x\n", "x\nx\n"]),
            "x\nx\nx\nx\nx\n"
        );
    }

    /// Builds one framed input from (tag, payload) pairs in the given
    /// arrival order.
    fn framed_input(frames: &[(u64, &str)]) -> AggInput {
        let mut buf = Vec::new();
        for (tag, payload) in frames {
            crate::frame::write_frame(&mut buf, *tag, payload.as_bytes()).expect("frame");
        }
        Box::new(io::Cursor::new(buf))
    }

    fn try_run_reorder(inputs: Vec<AggInput>) -> io::Result<String> {
        let mut out = Vec::new();
        let reg = Registry::standard();
        run_aggregator(
            &["pash-agg-reorder".to_string()],
            inputs,
            &mut out,
            &reg,
            Arc::new(MemFs::new()),
        )?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    fn run_reorder(inputs: Vec<AggInput>) -> String {
        try_run_reorder(inputs).expect("reorder")
    }

    #[test]
    fn reorder_restores_rotation_order() {
        // The conforming shape: tag t on input t % k.
        let inputs = vec![
            framed_input(&[(0, "a\n"), (3, "d\n")]),
            framed_input(&[(1, "b\n"), (4, "e\n")]),
            framed_input(&[(2, "c\n")]),
        ];
        assert_eq!(run_reorder(inputs), "a\nb\nc\nd\ne\n");
    }

    #[test]
    fn reorder_handles_uneven_and_empty_inputs() {
        // Conforming deal (tag t on input t % k) with uneven counts.
        let inputs = vec![
            framed_input(&[(0, "a\n"), (3, "d\n"), (6, "g\n")]),
            framed_input(&[(1, "b\n"), (4, "e\n")]),
            framed_input(&[(2, "c\n"), (5, "f\n")]),
        ];
        assert_eq!(run_reorder(inputs), "a\nb\nc\nd\ne\nf\ng\n");
        // A short stream leaves later inputs with nothing at all.
        let inputs = vec![
            framed_input(&[(0, "a\n")]),
            framed_input(&[(1, "b\n")]),
            framed_input(&[]),
        ];
        assert_eq!(run_reorder(inputs), "a\nb\n");
    }

    #[test]
    fn reorder_duplicate_tag_fails_fast() {
        let inputs = vec![
            framed_input(&[(0, "a\n"), (1, "b\n")]),
            framed_input(&[(1, "b\n")]),
        ];
        let err = try_run_reorder(inputs).expect_err("duplicate tag");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn reorder_missing_tag_fails_fast() {
        // Tag 1's owner ends empty while tag 2 is in flight: the gap
        // can never fill, and the reorderer must not hang or silently
        // emit the tail.
        let inputs = vec![framed_input(&[(0, "a\n"), (2, "c\n")]), framed_input(&[])];
        let err = try_run_reorder(inputs).expect_err("missing tag");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn reorder_empty_payloads_vanish() {
        // A worker that filtered everything out still emits its frame.
        let inputs = vec![
            framed_input(&[(0, ""), (2, "c\n")]),
            framed_input(&[(1, "b\n")]),
        ];
        assert_eq!(run_reorder(inputs), "b\nc\n");
    }

    #[test]
    fn reorder_no_inputs_is_empty() {
        assert_eq!(run_reorder(Vec::new()), "");
    }

    fn try_run_frame_merge(inner: &[&str], inputs: Vec<AggInput>) -> io::Result<String> {
        let mut argv = vec!["pash-agg-frame-merge".to_string()];
        argv.extend(inner.iter().map(|s| s.to_string()));
        let mut out = Vec::new();
        let reg = Registry::standard();
        run_aggregator(&argv, inputs, &mut out, &reg, Arc::new(MemFs::new()))?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    fn run_frame_merge(inner: &[&str], inputs: Vec<AggInput>) -> String {
        try_run_frame_merge(inner, inputs).expect("frame-merge")
    }

    #[test]
    fn frame_merge_uniq_folds_every_tag_boundary() {
        // Per-block uniq output with duplicates straddling boundaries
        // between frames of *different* workers (tags 0→1) and frames
        // of the *same* worker (tags 1→3 live on input 1): both fold.
        let inputs = vec![
            framed_input(&[(0, "a\nb\n"), (2, "b\nc\n")]),
            framed_input(&[(1, "b\n"), (3, "c\nd\n")]),
        ];
        assert_eq!(run_frame_merge(&["pash-agg-uniq"], inputs), "a\nb\nc\nd\n");
    }

    #[test]
    fn frame_merge_uniq_count_sums_boundary_groups() {
        // `uniq -c` per block; the group `b` spans three blocks and
        // its counts must sum, while distinct groups pass through.
        let inputs = vec![
            framed_input(&[(0, "      2 a\n      1 b\n"), (2, "      3 b\n")]),
            framed_input(&[(1, "      4 b\n"), (3, "      1 c\n")]),
        ];
        assert_eq!(
            run_frame_merge(&["pash-agg-uniq-c"], inputs),
            "      2 a\n      8 b\n      1 c\n"
        );
    }

    #[test]
    fn frame_merge_empty_blocks_are_neutral() {
        // A block the worker filtered to nothing contributes no lines
        // and must not break an open group around it.
        let inputs = vec![
            framed_input(&[(0, "      2 x\n"), (2, "      1 x\n")]),
            framed_input(&[(1, "")]),
        ];
        assert_eq!(run_frame_merge(&["pash-agg-uniq-c"], inputs), "      3 x\n");
    }

    #[test]
    fn frame_merge_missing_tag_fails_fast() {
        // Same fail-fast contract as the reorderer: a gap in the tag
        // sequence is a lost block, not something to paper over.
        let inputs = vec![framed_input(&[(0, "a\n"), (2, "c\n")]), framed_input(&[])];
        let err = try_run_frame_merge(&["pash-agg-uniq"], inputs).expect_err("missing tag");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn frame_merge_rejects_unwrappable_inner() {
        let err = try_run_frame_merge(&["pash-agg-sort"], Vec::new()).expect_err("bad inner");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    mod reorder_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            // For ANY within-input arrival permutation under the
            // conforming deal (tag t on input t % k — what r_split
            // guarantees), the reorderer emits payloads in tag order.
            #[test]
            fn prop_reorder_restores_any_permutation(
                n in 0usize..40,
                k in 1usize..6,
                seed in 0u64..(1u64 << 48),
            ) {
                // Seeded Fisher–Yates over the tag sequence.
                let mut order: Vec<u64> = (0..n as u64).collect();
                let mut s = seed | 1;
                for i in (1..order.len()).rev() {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let j = (s >> 33) as usize % (i + 1);
                    order.swap(i, j);
                }
                // Deal each tag to its owning input, preserving the
                // permuted relative order within each input.
                let mut per_input: Vec<Vec<(u64, String)>> = vec![Vec::new(); k];
                for &tag in &order {
                    per_input[(tag % k as u64) as usize].push((tag, format!("line-{tag}\n")));
                }
                let inputs: Vec<AggInput> = per_input
                    .iter()
                    .map(|frames| {
                        let refs: Vec<(u64, &str)> =
                            frames.iter().map(|(t, p)| (*t, p.as_str())).collect();
                        framed_input(&refs)
                    })
                    .collect();
                let expected: String = (0..n as u64).map(|t| format!("line-{t}\n")).collect();
                prop_assert_eq!(run_reorder(inputs), expected);
            }
        }
    }

    mod merge_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            // Merging k sorted chunks equals sorting the concatenation,
            // for arbitrary line material and any fan-in.
            #[test]
            fn prop_tree_merge_equals_global_sort(
                lines in proptest::collection::vec("[a-z]{0,6}", 0..80),
                k in 1usize..12,
            ) {
                let mut sorted = lines.clone();
                sorted.sort_unstable();
                // Contiguous sorted chunks, like parallel sort copies.
                let per = sorted.len().div_ceil(k).max(1);
                let chunks: Vec<String> = sorted
                    .chunks(per)
                    .map(|c| c.iter().map(|l| format!("{l}\n")).collect())
                    .collect();
                let refs: Vec<&str> = chunks.iter().map(|s| s.as_str()).collect();
                let merged = run(&["pash-agg-sort"], &refs);
                let expected: String = sorted.iter().map(|l| format!("{l}\n")).collect();
                prop_assert_eq!(merged, expected);
            }
        }
    }
}
