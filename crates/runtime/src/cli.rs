//! The multi-call command-line dispatch shared by the `pashc` and
//! `pash-rt` binaries.
//!
//! Both binaries expose the same union of commands — every coreutils
//! command plus the runtime primitives (`eager`, `split`, `fileseg`,
//! `pash-agg-*`) — so every [`pash_core::plan::PlanOp`] is runnable
//! as a standalone OS process. They differ only in lookup precedence:
//! `pashc` resolves coreutils names first, `pash-rt` resolves runtime
//! primitives first (the roles `$PASHC` / `$PASH_RT` play in emitted
//! scripts).
//!
//! # FIFO redirection (`--stdin` / `--stdout`)
//!
//! The process backend wires internal plan edges as named FIFOs.
//! Opening a FIFO blocks until the peer end opens, so the *parent*
//! must never open one — it would deadlock before spawning the peer.
//! Instead the spawned command is told to open its own endpoints:
//!
//! ```text
//! pashc --stdin /tmp/fifo-in --stdout /tmp/fifo-out grep foo
//! ```
//!
//! The open happens here, in the child, after every node of the
//! region has been spawned — exactly when `sh` would perform `<`/`>`
//! redirections in a background job.

use std::io::{self, Read, Write};
use std::sync::Arc;

use pash_core::plan::fold_statuses;
use pash_coreutils::fs::{Fs, RealFs};
use pash_coreutils::{run_standalone, Registry};

use crate::agg::run_aggregator;
use crate::fault::{parse_env_spec, FaultyWriter, INFRA_STATUS};
use crate::fileseg::read_segment;
use crate::frame::{write_frame, FrameReader};
use crate::relay::{run_relay, RelayMode};
use crate::split::{split_general, split_round_robin};

/// Which name table wins when a name exists in both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Coreutils commands first (`pashc`).
    Coreutils,
    /// Runtime primitives first (`pash-rt`).
    Runtime,
}

/// Leading `--stdin PATH` / `--stdout PATH` / `--in PATH` redirections
/// plus the valueless `--framed` worker-mode flag.
#[derive(Debug, Default)]
struct Redirections {
    stdin: Option<String>,
    stdout: Option<String>,
    /// Ordered input operands for the `agg` subcommand.
    ins: Vec<String>,
    /// Run the command once per tagged input block, re-framing its
    /// output under the same tag (the `r_split` worker mode).
    framed: bool,
}

impl Redirections {
    /// Splits redirections off the front of `args`.
    fn parse(args: &[String]) -> io::Result<(Redirections, &[String])> {
        let mut redir = Redirections::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if flag == "--framed" {
                redir.framed = true;
                i += 1;
                continue;
            }
            if !matches!(flag, "--stdin" | "--stdout" | "--in") {
                break;
            }
            let path = args.get(i + 1).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("{flag} needs a path"))
            })?;
            match flag {
                "--stdin" => redir.stdin = Some(path.clone()),
                "--stdout" => redir.stdout = Some(path.clone()),
                _ => redir.ins.push(path.clone()),
            }
            i += 2;
        }
        Ok((redir, &args[i..]))
    }

    /// Opens the input side: the redirected file (blocking until a
    /// FIFO peer arrives) or the process's stdin.
    fn open_stdin(&self) -> io::Result<Box<dyn Read + Send>> {
        Ok(match &self.stdin {
            Some(p) => Box::new(std::fs::File::open(p)?),
            None => Box::new(io::stdin()),
        })
    }

    /// Opens the output side, buffered. When the parent armed this
    /// child with a stream fault (`PASH_FAULT`, set by the process
    /// backend on exactly one node per attempt), the writer is
    /// wrapped so the fault fires at its byte offset — an injected
    /// death aborts the whole process (SIGABRT, status 134).
    fn open_stdout(&self) -> io::Result<Box<dyn Write + Send>> {
        let raw: Box<dyn Write + Send> = match &self.stdout {
            Some(p) => Box::new(io::BufWriter::new(std::fs::File::create(p)?)),
            None => Box::new(io::BufWriter::new(io::stdout())),
        };
        Ok(
            match std::env::var("PASH_FAULT")
                .ok()
                .and_then(|s| parse_env_spec(&s))
            {
                Some(mode) => Box::new(FaultyWriter::new_abort(raw, mode)),
                None => raw,
            },
        )
    }
}

/// Whether `name` is a runtime primitive.
fn is_runtime_name(name: &str) -> bool {
    matches!(name, "eager" | "split" | "r_split" | "fileseg" | "agg")
        || name.starts_with("pash-agg-")
}

/// Runs one multi-call invocation; returns the exit status.
///
/// The filesystem is the host's, rooted at the working directory —
/// spawned plan nodes inherit the backend's root as their cwd.
pub fn run_multicall(personality: Personality, args: &[String]) -> io::Result<i32> {
    let (redir, rest) = Redirections::parse(args)?;
    let (name, rest) = match rest.split_first() {
        Some(x) => x,
        None => {
            eprintln!("usage: pashc|pash-rt [--stdin PATH] [--stdout PATH] COMMAND [ARGS…]");
            eprintln!(
                "commands: {} + eager split r_split fileseg pash-agg-*",
                Registry::standard().names().join(" ")
            );
            return Ok(2);
        }
    };
    let cwd = std::env::current_dir()?;
    let fs: Arc<dyn Fs> = Arc::new(RealFs::new(cwd));
    let registry = Registry::standard();
    let runtime_first = personality == Personality::Runtime;
    let runtime_hit = is_runtime_name(name);
    let registry_hit = registry.get(name).is_some();
    if runtime_hit && (runtime_first || !registry_hit) {
        run_runtime(name, rest, &redir, &registry, fs)
    } else if redir.framed {
        run_framed_command(name, rest, &redir, &registry, fs)
    } else {
        let mut stdin = io::BufReader::new(redir.open_stdin()?);
        let mut stdout = redir.open_stdout()?;
        run_standalone(&registry, fs, name, rest, &mut stdin, &mut stdout)
    }
}

/// The `--framed` worker mode: run the command once per tagged input
/// block, emitting its output as one same-tagged block, so order
/// survives to the downstream `pash-agg-reorder`. The exit status
/// folds the per-block statuses like a parallel region does.
fn run_framed_command(
    name: &str,
    rest: &[String],
    redir: &Redirections,
    registry: &Registry,
    fs: Arc<dyn Fs>,
) -> io::Result<i32> {
    let mut frames = FrameReader::new(redir.open_stdin()?);
    let mut out = redir.open_stdout()?;
    let mut statuses = Vec::new();
    while let Some((tag, payload)) = frames.next_frame()? {
        let mut stdin = io::Cursor::new(payload);
        let mut buf = Vec::new();
        statuses.push(run_standalone(
            registry,
            fs.clone(),
            name,
            rest,
            &mut stdin,
            &mut buf,
        )?);
        write_frame(&mut out, tag, &buf)?;
    }
    if statuses.is_empty() {
        // No blocks reached this worker: run once on empty input for
        // the status, emit nothing.
        let mut stdin = io::empty();
        let mut sink = Vec::new();
        statuses.push(run_standalone(
            registry, fs, name, rest, &mut stdin, &mut sink,
        )?);
    }
    out.flush()?;
    Ok(fold_statuses(&statuses))
}

/// Runs a runtime primitive.
fn run_runtime(
    name: &str,
    rest: &[String],
    redir: &Redirections,
    registry: &Registry,
    fs: Arc<dyn Fs>,
) -> io::Result<i32> {
    match name {
        "eager" => {
            let mode = if rest.first().map(|s| s.as_str()) == Some("--blocking") {
                RelayMode::Blocking(8)
            } else {
                RelayMode::Full
            };
            let input = redir.open_stdin()?;
            let mut out = redir.open_stdout()?;
            run_relay(input, &mut out, mode)?;
            out.flush()?;
            Ok(0)
        }
        "split" => {
            let outputs: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            if outputs.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "split needs output paths",
                ));
            }
            let mut writers: Vec<Box<dyn Write + Send>> = Vec::new();
            for o in &outputs {
                writers.push(fs.create(o)?);
            }
            let mut input = io::BufReader::new(redir.open_stdin()?);
            split_general(&mut input, &mut writers)?;
            Ok(0)
        }
        "r_split" => {
            let raw = rest.iter().any(|a| a == "--raw");
            let outputs: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
            if outputs.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "r_split needs output paths",
                ));
            }
            let mut writers: Vec<Box<dyn Write + Send>> = Vec::new();
            for o in &outputs {
                writers.push(fs.create(o)?);
            }
            let mut input = io::BufReader::new(redir.open_stdin()?);
            split_round_robin(&mut input, &mut writers, !raw)?;
            Ok(0)
        }
        "fileseg" => {
            if rest.len() != 3 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "usage: fileseg PATH PART OF",
                ));
            }
            let part: usize = rest[1]
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad PART"))?;
            let of: usize = rest[2]
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad OF"))?;
            let data = read_segment(&fs, &rest[0], part, of)?;
            let mut out = redir.open_stdout()?;
            out.write_all(&data)?;
            out.flush()?;
            Ok(0)
        }
        // The spawn-spec form: inputs arrive as `--in` redirections,
        // the words after `agg` are the aggregator argv verbatim.
        // This is the only unambiguous form for re-applied command
        // aggregators (`agg head -n 3` takes three lines of the
        // ordered concatenation; `head -n 3 f1 f2` would take three
        // *per file*).
        "agg" => {
            if rest.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "agg needs an aggregator argv",
                ));
            }
            let mut inputs: Vec<Box<dyn Read + Send>> = Vec::new();
            for f in &redir.ins {
                inputs.push(fs.open(f)?);
            }
            let mut out = redir.open_stdout()?;
            let status = run_aggregator(rest, inputs, &mut out, registry, fs)?;
            out.flush()?;
            Ok(status)
        }
        // Compatibility form used by hand-written invocations: input
        // paths as operands, separated heuristically.
        agg if agg.starts_with("pash-agg-") => {
            let (agg_args, files) = split_agg_args(agg, rest);
            let mut inputs: Vec<Box<dyn Read + Send>> = Vec::new();
            for f in &files {
                inputs.push(fs.open(f)?);
            }
            let mut argv: Vec<String> = vec![agg.to_string()];
            argv.extend(agg_args);
            let mut out = redir.open_stdout()?;
            let status = run_aggregator(&argv, inputs, &mut out, registry, fs)?;
            out.flush()?;
            Ok(status)
        }
        other => Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{other}: not found"),
        )),
    }
}

/// Splits aggregator argv into (arguments, input paths).
fn split_agg_args(agg: &str, rest: &[String]) -> (Vec<String>, Vec<String>) {
    match agg {
        "pash-agg-sort" => {
            // Options -k/-t take values; everything non-option is an
            // input path.
            let mut args = Vec::new();
            let mut files = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                if a == "-k" || a == "-t" {
                    args.push(a.clone());
                    if let Some(v) = it.next() {
                        args.push(v.clone());
                    }
                } else if a.starts_with('-') && a.len() > 1 {
                    args.push(a.clone());
                } else {
                    files.push(a.clone());
                }
            }
            (args, files)
        }
        "pash-agg-frame-merge" => {
            // The first operand names the wrapped boundary-fold
            // aggregator (it has no flags of its own); everything
            // after it is an input path.
            match rest.split_first() {
                Some((inner, files)) => (vec![inner.clone()], files.to_vec()),
                None => (Vec::new(), Vec::new()),
            }
        }
        _ => {
            let (args, files): (Vec<String>, Vec<String>) = rest
                .iter()
                .cloned()
                .partition(|a| a.starts_with('-') && a.len() > 1);
            (args, files)
        }
    }
}

/// Restores the default `SIGPIPE` disposition. Rust's startup sets it
/// to ignore, which would make both the emitted script's
/// `kill -s PIPE` and the process backend's teardown signal no-ops
/// against these binaries — a straggler blocked in a FIFO `open(2)`
/// would only die at the `SIGKILL` backstop. Real coreutils die of
/// `SIGPIPE`; so do we. The exit status is unchanged either way:
/// `128 + 13` equals the [`pash_coreutils::SIGPIPE_STATUS`] the
/// `BrokenPipe`-error path reports.
#[cfg(unix)]
fn restore_default_sigpipe() {
    extern "C" {
        fn signal(sig: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn restore_default_sigpipe() {}

/// The shared `main` body of both multi-call binaries.
pub fn multicall_main(tool: &str, personality: Personality) -> ! {
    restore_default_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run_multicall(personality, &args) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => pash_coreutils::SIGPIPE_STATUS,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // A corrupted or truncated frame crossed this process:
            // report the reserved infrastructure status so the parent
            // backend retries or falls back instead of trusting the
            // region's output.
            eprintln!("{tool}: {e}");
            INFRA_STATUS
        }
        Err(e) => {
            eprintln!("{tool}: {e}");
            1
        }
    };
    std::process::exit(code);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn redirections_split_off_the_front() {
        let args = s(&["--stdin", "a", "--stdout", "b", "grep", "--stdin"]);
        let (redir, rest) = Redirections::parse(&args).expect("parse");
        assert_eq!(redir.stdin.as_deref(), Some("a"));
        assert_eq!(redir.stdout.as_deref(), Some("b"));
        // Later words are command args even if they look like flags.
        assert_eq!(rest, &s(&["grep", "--stdin"])[..]);
    }

    #[test]
    fn redirection_without_path_is_an_error() {
        assert!(Redirections::parse(&s(&["--stdin"])).is_err());
    }

    #[test]
    fn runtime_names_recognized() {
        for n in [
            "eager",
            "split",
            "r_split",
            "fileseg",
            "pash-agg-sort",
            "pash-agg-wc",
            "pash-agg-reorder",
        ] {
            assert!(is_runtime_name(n), "{n}");
        }
        for n in ["cat", "sort", "head", "pashagg", "split2"] {
            assert!(!is_runtime_name(n), "{n}");
        }
    }

    #[test]
    fn framed_flag_parses_with_redirections() {
        let args = s(&["--framed", "--stdin", "a", "--stdout", "b", "grep", "x"]);
        let (redir, rest) = Redirections::parse(&args).expect("parse");
        assert!(redir.framed);
        assert_eq!(redir.stdin.as_deref(), Some("a"));
        assert_eq!(rest, &s(&["grep", "x"])[..]);
        // Redirections first, flag after — order must not matter.
        let args = s(&["--stdin", "a", "--framed", "grep", "x"]);
        let (redir, rest) = Redirections::parse(&args).expect("parse");
        assert!(redir.framed);
        assert_eq!(rest, &s(&["grep", "x"])[..]);
    }

    #[test]
    fn agg_arg_splitting_keeps_sort_key_values() {
        let (args, files) = split_agg_args("pash-agg-sort", &s(&["-k", "2", "-n", "f1", "f2"]));
        assert_eq!(args, s(&["-k", "2", "-n"]));
        assert_eq!(files, s(&["f1", "f2"]));
    }

    #[test]
    fn agg_arg_splitting_frame_merge_inner_is_not_a_file() {
        let (args, files) =
            split_agg_args("pash-agg-frame-merge", &s(&["pash-agg-uniq-c", "w0", "w1"]));
        assert_eq!(args, s(&["pash-agg-uniq-c"]));
        assert_eq!(files, s(&["w0", "w1"]));
    }
}
