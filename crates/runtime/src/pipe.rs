//! In-process pipes with UNIX semantics.
//!
//! A [`pipe`] is a bounded byte buffer shared between one writer and
//! one reader:
//!
//! * writes block while the buffer is full (the default 64 KiB
//!   capacity models the kernel pipe buffer — the root cause of the
//!   laziness stalls of §5.2, Fig. 6);
//! * reads block while the buffer is empty;
//! * dropping the writer delivers EOF;
//! * dropping the reader makes subsequent writes fail with
//!   [`std::io::ErrorKind::BrokenPipe`] — the SIGPIPE analogue that
//!   terminates producers whose consumer exited early.

use std::io::{self, Read, Write};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Default capacity, matching the Linux pipe buffer.
pub const DEFAULT_PIPE_CAPACITY: usize = 64 * 1024;

struct Inner {
    buf: std::collections::VecDeque<u8>,
    capacity: usize,
    writer_closed: bool,
    reader_closed: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    cond: Condvar,
}

/// Creates a bounded pipe with the given capacity in bytes.
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buf: std::collections::VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(1),
            writer_closed: false,
            reader_closed: false,
        }),
        cond: Condvar::new(),
    });
    (
        PipeWriter {
            shared: shared.clone(),
        },
        PipeReader { shared },
    )
}

/// The writing end of a [`pipe`].
pub struct PipeWriter {
    shared: Arc<Shared>,
}

/// The reading end of a [`pipe`].
pub struct PipeReader {
    shared: Arc<Shared>,
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut inner = self.shared.inner.lock();
        loop {
            if inner.reader_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe reader closed",
                ));
            }
            let free = inner.capacity.saturating_sub(inner.buf.len());
            if free > 0 {
                let n = free.min(data.len());
                inner.buf.extend(&data[..n]);
                self.shared.cond.notify_all();
                return Ok(n);
            }
            self.shared.cond.wait(&mut inner);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock();
        inner.writer_closed = true;
        self.shared.cond.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut inner = self.shared.inner.lock();
        loop {
            if !inner.buf.is_empty() {
                let n = out.len().min(inner.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = inner.buf.pop_front().expect("checked non-empty");
                }
                self.shared.cond.notify_all();
                return Ok(n);
            }
            if inner.writer_closed {
                return Ok(0);
            }
            self.shared.cond.wait(&mut inner);
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock();
        inner.reader_closed = true;
        // Release buffered data so blocked writers wake and observe
        // the broken pipe.
        inner.buf.clear();
        self.shared.cond.notify_all();
    }
}

/// Reads a sequence of readers one after another (ordered
/// concatenation — how `cat`-style stdin is presented to commands).
pub struct MultiReader {
    sources: std::collections::VecDeque<Box<dyn Read + Send>>,
}

impl MultiReader {
    /// Builds a multi-reader over ordered sources.
    pub fn new(sources: Vec<Box<dyn Read + Send>>) -> Self {
        MultiReader {
            sources: sources.into(),
        }
    }
}

impl Read for MultiReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            let src = match self.sources.front_mut() {
                Some(s) => s,
                None => return Ok(0),
            };
            let n = src.read(out)?;
            if n > 0 {
                return Ok(n);
            }
            self.sources.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn roundtrip_small() {
        let (mut w, mut r) = pipe(16);
        std::thread::scope(|s| {
            s.spawn(move || {
                w.write_all(b"hello world, this exceeds capacity")
                    .expect("write");
            });
            let mut buf = Vec::new();
            r.read_to_end(&mut buf).expect("read");
            assert_eq!(buf, b"hello world, this exceeds capacity");
        });
    }

    #[test]
    fn writer_drop_is_eof() {
        let (w, mut r) = pipe(16);
        drop(w);
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).expect("read"), 0);
    }

    #[test]
    fn reader_drop_breaks_pipe() {
        let (mut w, r) = pipe(4);
        drop(r);
        let err = w.write(b"data").expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn blocked_writer_wakes_on_reader_drop() {
        let (mut w, r) = pipe(2);
        w.write_all(b"ab").expect("fill");
        let t = std::thread::spawn(move || w.write(b"c"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(r);
        let res = t.join().expect("join");
        assert_eq!(res.expect_err("broken").kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn backpressure_bounds_buffer() {
        // A slow reader must bound the writer's progress.
        let (mut w, mut r) = pipe(8);
        let t = std::thread::spawn(move || {
            let mut written = 0usize;
            for _ in 0..4 {
                written += w.write(&[0u8; 64]).expect("write");
            }
            written
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Nothing consumed yet: at most the capacity got through.
        let mut buf = [0u8; 1024];
        let mut total = 0;
        loop {
            let n = r.read(&mut buf).expect("read");
            if n == 0 {
                break;
            }
            total += n;
        }
        let written = t.join().expect("join");
        assert_eq!(total, written);
    }

    #[test]
    fn multireader_concatenates_in_order() {
        let a: Box<dyn Read + Send> = Box::new(&b"one\n"[..]);
        let b: Box<dyn Read + Send> = Box::new(&b""[..]);
        let c: Box<dyn Read + Send> = Box::new(&b"two\n"[..]);
        let mut m = BufReader::new(MultiReader::new(vec![a, b, c]));
        let mut lines = Vec::new();
        let mut line = String::new();
        while m.read_line(&mut line).expect("read") > 0 {
            lines.push(line.clone());
            line.clear();
        }
        assert_eq!(lines, vec!["one\n", "two\n"]);
    }

    #[test]
    fn large_transfer_through_small_pipe() {
        let (mut w, mut r) = pipe(64);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expected = data.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                w.write_all(&data).expect("write");
            });
            let mut buf = Vec::new();
            r.read_to_end(&mut buf).expect("read");
            assert_eq!(buf, expected);
        });
    }
}
