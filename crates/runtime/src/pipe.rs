//! In-process pipes with UNIX semantics.
//!
//! A [`pipe`] is a bounded byte buffer shared between one writer and
//! one reader:
//!
//! * writes block while the buffer is full (the default 64 KiB
//!   capacity models the kernel pipe buffer — the root cause of the
//!   laziness stalls of §5.2, Fig. 6);
//! * reads block while the buffer is empty;
//! * dropping the writer delivers EOF;
//! * dropping the reader makes subsequent writes fail with
//!   [`std::io::ErrorKind::BrokenPipe`] — the SIGPIPE analogue that
//!   terminates producers whose consumer exited early.
//!
//! The transport is a contiguous ring buffer: each read or write moves
//! its whole run of bytes with at most two `copy_from_slice` calls
//! (the run may wrap around the end of the ring), so a transfer costs
//! O(chunks) lock acquisitions rather than O(bytes).
//!
//! Wakeups are batched behind park flags. The naive bounded-buffer
//! discipline pays one condvar sleep *and* one condvar notify per
//! capacity-sized cycle — at small capacities the transfer is
//! wakeup-bound, not copy-bound (the `pipe_4k_cap` dataplane series).
//! Two refinements cut that cost:
//!
//! * a side about to sleep first spends a bounded number of
//!   `yield_now` spins re-checking the condition — when the peer is
//!   runnable this trades the futex sleep/wake round trip for a
//!   scheduler yield, and the park flag never gets set;
//! * `notify_one` is only issued when the peer actually parked
//!   (`reader_parked`/`writer_parked`, maintained under the lock), so
//!   spinning pairs exchange the whole stream with zero futex
//!   traffic.

use std::io::{self, Read, Write};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Default capacity, matching the Linux pipe buffer.
pub const DEFAULT_PIPE_CAPACITY: usize = 64 * 1024;

/// How many times a full writer / empty reader re-checks after a
/// `yield_now` before parking on the condvar for real.
const SPIN_YIELDS: usize = 32;

struct Inner {
    /// The ring storage, exactly `capacity` bytes, allocated once.
    buf: Box<[u8]>,
    /// Index of the first buffered byte.
    head: usize,
    /// Number of buffered bytes.
    len: usize,
    writer_closed: bool,
    reader_closed: bool,
    /// Set by [`PipeMonitor::poison`] (the region-deadline watchdog):
    /// both ends fail with `TimedOut` instead of blocking further.
    poisoned: bool,
    /// The reader is parked on `data_available` (set under the lock
    /// just before waiting; a notifier clears it).
    reader_parked: bool,
    /// The writer is parked on `space_available`.
    writer_parked: bool,
}

impl Inner {
    fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Copies up to `data.len()` bytes in at the write position;
    /// returns the count actually buffered.
    fn push(&mut self, data: &[u8]) -> usize {
        let cap = self.capacity();
        let n = data.len().min(cap - self.len);
        let pos = (self.head + self.len) % cap;
        let first = n.min(cap - pos);
        self.buf[pos..pos + first].copy_from_slice(&data[..first]);
        self.buf[..n - first].copy_from_slice(&data[first..n]);
        self.len += n;
        n
    }

    /// Copies up to `out.len()` bytes out from the read position;
    /// returns the count actually delivered.
    fn pop(&mut self, out: &mut [u8]) -> usize {
        let cap = self.capacity();
        let n = out.len().min(self.len);
        let first = n.min(cap - self.head);
        out[..first].copy_from_slice(&self.buf[self.head..self.head + first]);
        out[first..n].copy_from_slice(&self.buf[..n - first]);
        self.head = (self.head + n) % cap;
        self.len -= n;
        n
    }

    /// Discards all buffered bytes — called exactly once, when the
    /// reader closes, so blocked writers wake into the broken pipe.
    fn drop_buffered(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

struct Shared {
    inner: Mutex<Inner>,
    /// The reader sleeps here for the empty→non-empty transition.
    data_available: Condvar,
    /// The writer sleeps here for the full→non-full transition.
    space_available: Condvar,
}

/// Creates a bounded pipe with the given capacity in bytes.
pub fn pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    let (w, r, _) = pipe_monitored(capacity);
    (w, r)
}

/// Creates a bounded pipe plus a [`PipeMonitor`] handle that can
/// poison it from outside (the region-deadline watchdog).
pub fn pipe_monitored(capacity: usize) -> (PipeWriter, PipeReader, PipeMonitor) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buf: vec![0u8; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            writer_closed: false,
            reader_closed: false,
            poisoned: false,
            reader_parked: false,
            writer_parked: false,
        }),
        data_available: Condvar::new(),
        space_available: Condvar::new(),
    });
    (
        PipeWriter {
            shared: shared.clone(),
        },
        PipeReader {
            shared: shared.clone(),
        },
        PipeMonitor { shared },
    )
}

/// An out-of-band handle on a pipe, held by the deadline watchdog.
pub struct PipeMonitor {
    shared: Arc<Shared>,
}

impl PipeMonitor {
    /// Poisons the pipe: both ends — including ones currently parked
    /// on a condvar — fail with `TimedOut` instead of blocking. This
    /// is how a region deadline unwedges node threads stuck on a
    /// stalled edge.
    pub fn poison(&self) {
        let mut inner = self.shared.inner.lock();
        inner.poisoned = true;
        inner.reader_parked = false;
        inner.writer_parked = false;
        self.shared.data_available.notify_all();
        self.shared.space_available.notify_all();
    }
}

/// The error both ends report once poisoned.
fn poisoned_error() -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, "pipe poisoned by region deadline")
}

/// The writing end of a [`pipe`].
pub struct PipeWriter {
    shared: Arc<Shared>,
}

/// The reading end of a [`pipe`].
pub struct PipeReader {
    shared: Arc<Shared>,
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let mut spins = 0;
        let mut inner = self.shared.inner.lock();
        loop {
            if inner.poisoned {
                return Err(poisoned_error());
            }
            if inner.reader_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe reader closed",
                ));
            }
            if inner.len < inner.capacity() {
                let n = inner.push(data);
                if inner.reader_parked {
                    inner.reader_parked = false;
                    self.shared.data_available.notify_one();
                }
                return Ok(n);
            }
            if spins < SPIN_YIELDS {
                // Full, but the reader may be running: hand it the
                // core instead of paying a futex round trip.
                spins += 1;
                drop(inner);
                std::thread::yield_now();
                inner = self.shared.inner.lock();
            } else {
                inner.writer_parked = true;
                self.shared.space_available.wait(&mut inner);
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock();
        inner.writer_closed = true;
        inner.reader_parked = false;
        self.shared.data_available.notify_one();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut spins = 0;
        let mut inner = self.shared.inner.lock();
        loop {
            if inner.poisoned {
                return Err(poisoned_error());
            }
            if inner.len > 0 {
                let n = inner.pop(out);
                if inner.writer_parked {
                    inner.writer_parked = false;
                    self.shared.space_available.notify_one();
                }
                return Ok(n);
            }
            if inner.writer_closed {
                return Ok(0);
            }
            if spins < SPIN_YIELDS {
                spins += 1;
                drop(inner);
                std::thread::yield_now();
                inner = self.shared.inner.lock();
            } else {
                inner.reader_parked = true;
                self.shared.data_available.wait(&mut inner);
            }
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock();
        inner.reader_closed = true;
        inner.drop_buffered();
        inner.writer_parked = false;
        self.shared.space_available.notify_one();
    }
}

/// Reads a sequence of readers one after another (ordered
/// concatenation — how `cat`-style stdin is presented to commands).
pub struct MultiReader {
    sources: std::collections::VecDeque<Box<dyn Read + Send>>,
}

impl MultiReader {
    /// Builds a multi-reader over ordered sources.
    pub fn new(sources: Vec<Box<dyn Read + Send>>) -> Self {
        MultiReader {
            sources: sources.into(),
        }
    }
}

impl Read for MultiReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            let src = match self.sources.front_mut() {
                Some(s) => s,
                None => return Ok(0),
            };
            let n = src.read(out)?;
            if n > 0 {
                return Ok(n);
            }
            self.sources.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn roundtrip_small() {
        let (mut w, mut r) = pipe(16);
        std::thread::scope(|s| {
            s.spawn(move || {
                w.write_all(b"hello world, this exceeds capacity")
                    .expect("write");
            });
            let mut buf = Vec::new();
            r.read_to_end(&mut buf).expect("read");
            assert_eq!(buf, b"hello world, this exceeds capacity");
        });
    }

    #[test]
    fn writer_drop_is_eof() {
        let (w, mut r) = pipe(16);
        drop(w);
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).expect("read"), 0);
    }

    #[test]
    fn reader_drop_breaks_pipe() {
        let (mut w, r) = pipe(4);
        drop(r);
        let err = w.write(b"data").expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn blocked_writer_wakes_on_reader_drop() {
        let (mut w, r) = pipe(2);
        w.write_all(b"ab").expect("fill");
        let t = std::thread::spawn(move || w.write(b"c"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(r);
        let res = t.join().expect("join");
        assert_eq!(res.expect_err("broken").kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn backpressure_bounds_buffer() {
        // A slow reader must bound the writer's progress.
        let (mut w, mut r) = pipe(8);
        let t = std::thread::spawn(move || {
            let mut written = 0usize;
            for _ in 0..4 {
                written += w.write(&[0u8; 64]).expect("write");
            }
            written
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Nothing consumed yet: at most the capacity got through.
        let mut buf = [0u8; 1024];
        let mut total = 0;
        loop {
            let n = r.read(&mut buf).expect("read");
            if n == 0 {
                break;
            }
            total += n;
        }
        let written = t.join().expect("join");
        assert_eq!(total, written);
    }

    #[test]
    fn writes_wrap_around_the_ring() {
        // Advance the head so a later bulk write must wrap, exercising
        // the two-slice path.
        let (mut w, mut r) = pipe(8);
        w.write_all(b"abcde").expect("write");
        let mut buf = [0u8; 5];
        r.read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"abcde");
        // head is now 5; these 7 bytes occupy [5..8) + [0..4).
        w.write_all(b"0123456").expect("wrapping write");
        let mut buf = [0u8; 7];
        r.read_exact(&mut buf).expect("wrapping read");
        assert_eq!(&buf, b"0123456");
    }

    #[test]
    fn poison_unblocks_parked_ends() {
        let (mut w, mut r, m) = pipe_monitored(4);
        // Park the reader on an empty pipe, then poison from outside.
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            r.read(&mut buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        m.poison();
        let err = t.join().expect("join").expect_err("poisoned read");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let err = w.write(b"x").expect_err("poisoned write");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn multireader_concatenates_in_order() {
        let a: Box<dyn Read + Send> = Box::new(&b"one\n"[..]);
        let b: Box<dyn Read + Send> = Box::new(&b""[..]);
        let c: Box<dyn Read + Send> = Box::new(&b"two\n"[..]);
        let mut m = BufReader::new(MultiReader::new(vec![a, b, c]));
        let mut lines = Vec::new();
        let mut line = String::new();
        while m.read_line(&mut line).expect("read") > 0 {
            lines.push(line.clone());
            line.clear();
        }
        assert_eq!(lines, vec!["one\n", "two\n"]);
    }

    #[test]
    fn large_transfer_through_small_pipe() {
        let (mut w, mut r) = pipe(64);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expected = data.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                w.write_all(&data).expect("write");
            });
            let mut buf = Vec::new();
            r.read_to_end(&mut buf).expect("read");
            assert_eq!(buf, expected);
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // Arbitrary interleavings of partial reads and writes
        // round-trip byte-identically: the writer pushes the data in
        // chunks of varying sizes, the reader pulls with varying
        // buffer sizes, and the pipe capacity itself varies — so the
        // ring wraps at every offset.
        #[test]
        fn prop_chunked_roundtrip(
            data in proptest::collection::vec(0u8..255, 0..2048),
            write_sizes in proptest::collection::vec(1usize..97, 1..8),
            read_sizes in proptest::collection::vec(1usize..97, 1..8),
            capacity in 1usize..129,
        ) {
            let (mut w, mut r) = pipe(capacity);
            let expected = data.clone();
            let received = std::thread::scope(|s| {
                let data = &data;
                let write_sizes = &write_sizes;
                s.spawn(move || {
                    let mut off = 0;
                    let mut i = 0;
                    while off < data.len() {
                        let n = write_sizes[i % write_sizes.len()]
                            .min(data.len() - off);
                        w.write_all(&data[off..off + n]).expect("write");
                        off += n;
                        i += 1;
                    }
                });
                let mut got = Vec::new();
                let mut buf = [0u8; 96];
                let mut i = 0;
                loop {
                    let want = read_sizes[i % read_sizes.len()];
                    let n = r.read(&mut buf[..want]).expect("read");
                    if n == 0 {
                        break;
                    }
                    got.extend_from_slice(&buf[..n]);
                    i += 1;
                }
                got
            });
            prop_assert_eq!(received, expected);
        }

        // Writer drop ⇒ EOF, after any amount of drained traffic.
        #[test]
        fn prop_writer_drop_is_eof(
            data in proptest::collection::vec(0u8..255, 0..256),
            capacity in 1usize..64,
        ) {
            let (mut w, mut r) = pipe(capacity);
            let expected = data.clone();
            let got = std::thread::scope(|s| {
                s.spawn(move || {
                    w.write_all(&data).expect("write");
                });
                let mut got = Vec::new();
                r.read_to_end(&mut got).expect("read");
                // And EOF is sticky.
                let mut buf = [0u8; 8];
                assert_eq!(r.read(&mut buf).expect("read"), 0);
                got
            });
            prop_assert_eq!(got, expected);
        }

        // Reader drop ⇒ BrokenPipe, regardless of how full the pipe
        // already was.
        #[test]
        fn prop_reader_drop_breaks_pipe(
            prefill in 0usize..32,
            capacity in 1usize..33,
        ) {
            let (mut w, r) = pipe(capacity);
            let n = prefill.min(capacity.saturating_sub(1));
            if n > 0 {
                w.write_all(&vec![7u8; n]).expect("prefill");
            }
            drop(r);
            let err = w.write(b"x").expect_err("must fail");
            prop_assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        }
    }
}
