//! The `pashd` service substrate: wire protocol, two-tier plan-cache
//! plumbing, admission control, and the metrics surface.
//!
//! PaSh's compilation pass is pure overhead on every invocation; a
//! long-running service amortizes it across *requests*. This module
//! holds everything the daemon needs that is not policy:
//!
//! * a small length-prefixed protocol over a Unix-domain socket
//!   ([`Request`] / [`Response`], [`Client`]) carrying script source,
//!   configuration, backend name, and stdin bytes one way and
//!   stdout/status (plus written files) the other;
//! * [`DiskPlanCache`] — the on-disk tier behind the in-memory
//!   `compile_cached` LRU, storing `ExecutionPlan::dump()` text keyed
//!   by plan fingerprint with atomic rename writes and
//!   corruption-tolerant reads, so warm requests skip parse+lower even
//!   across daemon restarts;
//! * [`Semaphore`] — the `max_concurrent_runs` admission gate (the
//!   service-level analogue of the process backend's `max_inflight`
//!   region throttle);
//! * [`ServiceMetrics`] — per-tier compile hit/miss counters, queue
//!   depth, a request-latency histogram, and requests served,
//!   queryable over the socket;
//! * [`serve`] — the accept loop, one thread per connection, wiring
//!   admission and metrics around a caller-supplied request handler
//!   (the `pash` facade supplies the handler, since only it can reach
//!   every backend).
//!
//! The actual compile-and-run policy lives in `pash::daemon`; keeping
//! it out of this crate avoids a dependency cycle (the facade depends
//! on the runtime, not vice versa).

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use pash_core::dfg::transform::SplitPolicy;
use pash_core::plan::ExecutionPlan;

/// Largest frame either side accepts (64 MiB). Scripts, configs, and
/// benchmark corpora are far smaller; a length beyond this is a
/// protocol error or corruption, rejected before allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// A compile-and-run request's parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRequest {
    /// The shell script source.
    pub script: String,
    /// Backend selection name (`shell`, `threads`, `processes`, `sim`).
    pub backend: String,
    /// Parallelism width; `0` asks the daemon to choose per region
    /// from its measured profiles (adaptive).
    pub width: u32,
    /// Split-node policy (ignored for adaptive requests).
    pub split: SplitPolicy,
    /// Bytes fed to the program's stdin.
    pub stdin: Vec<u8>,
}

/// One protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compile (through the plan caches) and run a script.
    Run(RunRequest),
    /// Seed a file into the daemon's template filesystem. Every run
    /// executes against a fresh snapshot of the template, so seeded
    /// corpora are shared while runs stay isolated.
    PutFile {
        /// Path within the template filesystem.
        path: String,
        /// File contents.
        bytes: Vec<u8>,
    },
    /// Fetch the metrics surface as JSON.
    Metrics,
    /// Stop the daemon (acknowledged before the listener closes).
    Shutdown,
}

/// Which cache tier satisfied a run's compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Nothing cached: the full front-end ran.
    Cold,
    /// Tier 1: the in-memory `compile_cached` LRU.
    Memory,
    /// Tier 2: the on-disk plan cache (parse of a stored dump).
    Disk,
}

impl CacheTier {
    fn to_u8(self) -> u8 {
        match self {
            CacheTier::Cold => 0,
            CacheTier::Memory => 1,
            CacheTier::Disk => 2,
        }
    }

    fn from_u8(v: u8) -> io::Result<CacheTier> {
        match v {
            0 => Ok(CacheTier::Cold),
            1 => Ok(CacheTier::Memory),
            2 => Ok(CacheTier::Disk),
            other => Err(bad_data(format!("bad cache tier {other}"))),
        }
    }
}

/// A successful run's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResponse {
    /// The program's exit status.
    pub status: i32,
    /// Which cache tier served the compilation.
    pub tier: CacheTier,
    /// Time spent obtaining the plan (compile or cache read), µs.
    pub compile_micros: u64,
    /// End-to-end request latency as observed by the server, µs.
    pub total_micros: u64,
    /// The program's stdout bytes (for the `shell` and `sim` backends,
    /// the rendered artifact).
    pub stdout: Vec<u8>,
    /// Files the run created or modified relative to the template
    /// filesystem, so `> out.txt`-style results reach the client.
    pub files: Vec<(String, Vec<u8>)>,
}

/// One protocol response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request failed; human-readable reason.
    Error(String),
    /// A [`Request::Run`] completed (the *program's* status may still
    /// be nonzero — that is a result, not an error).
    Run(RunResponse),
    /// Text payload (metrics JSON).
    Text(String),
    /// Acknowledgement with no payload.
    Ack,
}

// --- codec ----------------------------------------------------------

pub(crate) fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A cursor over a decoded frame.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    /// Bytes left in the frame (bounds untrusted element counts).
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(bad_data("truncated frame".to_string()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(bad_data(format!("field length {len} out of range")));
        }
        Ok(self.take(len)?.to_vec())
    }

    pub(crate) fn string(&mut self) -> io::Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| bad_data("non-UTF-8 string".to_string()))
    }

    pub(crate) fn done(&self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(bad_data("trailing bytes in frame".to_string()));
        }
        Ok(())
    }
}

fn split_to_u8(s: SplitPolicy) -> u8 {
    match s {
        SplitPolicy::Off => 0,
        SplitPolicy::General => 1,
        SplitPolicy::Sized => 2,
        SplitPolicy::RoundRobin => 3,
    }
}

fn split_from_u8(v: u8) -> io::Result<SplitPolicy> {
    match v {
        0 => Ok(SplitPolicy::Off),
        1 => Ok(SplitPolicy::General),
        2 => Ok(SplitPolicy::Sized),
        3 => Ok(SplitPolicy::RoundRobin),
        other => Err(bad_data(format!("bad split policy {other}"))),
    }
}

/// Writes one length-prefixed frame.
pub(crate) fn write_frame(w: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `None` at clean end-of-stream.
pub(crate) fn read_frame(r: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut len[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(bad_data("truncated frame length".to_string()));
        }
        got += n;
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame length {len} out of range")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes and writes one request.
pub fn write_request(w: &mut dyn Write, req: &Request) -> io::Result<()> {
    let mut p = Vec::new();
    match req {
        Request::Run(r) => {
            p.push(1);
            put_str(&mut p, &r.script);
            put_str(&mut p, &r.backend);
            put_u32(&mut p, r.width);
            p.push(split_to_u8(r.split));
            put_bytes(&mut p, &r.stdin);
        }
        Request::PutFile { path, bytes } => {
            p.push(2);
            put_str(&mut p, path);
            put_bytes(&mut p, bytes);
        }
        Request::Metrics => p.push(3),
        Request::Shutdown => p.push(4),
    }
    write_frame(w, &p)
}

/// Reads and decodes one request; `None` at clean end-of-stream.
pub fn read_request(r: &mut dyn Read) -> io::Result<Option<Request>> {
    let Some(frame) = read_frame(r)? else {
        return Ok(None);
    };
    let mut c = Cursor {
        buf: &frame,
        pos: 0,
    };
    let req = match c.u8()? {
        1 => Request::Run(RunRequest {
            script: c.string()?,
            backend: c.string()?,
            width: c.u32()?,
            split: split_from_u8(c.u8()?)?,
            stdin: c.bytes()?,
        }),
        2 => Request::PutFile {
            path: c.string()?,
            bytes: c.bytes()?,
        },
        3 => Request::Metrics,
        4 => Request::Shutdown,
        other => return Err(bad_data(format!("bad request op {other}"))),
    };
    c.done()?;
    Ok(Some(req))
}

/// Encodes and writes one response.
pub fn write_response(w: &mut dyn Write, resp: &Response) -> io::Result<()> {
    let mut p = Vec::new();
    match resp {
        Response::Error(msg) => {
            p.push(0);
            put_str(&mut p, msg);
        }
        Response::Run(r) => {
            p.push(1);
            put_u32(&mut p, r.status as u32);
            p.push(r.tier.to_u8());
            put_u64(&mut p, r.compile_micros);
            put_u64(&mut p, r.total_micros);
            put_bytes(&mut p, &r.stdout);
            put_u32(&mut p, r.files.len() as u32);
            for (path, bytes) in &r.files {
                put_str(&mut p, path);
                put_bytes(&mut p, bytes);
            }
        }
        Response::Text(s) => {
            p.push(2);
            put_str(&mut p, s);
        }
        Response::Ack => p.push(3),
    }
    write_frame(w, &p)
}

/// Reads and decodes one response.
pub fn read_response(r: &mut dyn Read) -> io::Result<Response> {
    let frame = read_frame(r)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
    })?;
    let mut c = Cursor {
        buf: &frame,
        pos: 0,
    };
    let resp = match c.u8()? {
        0 => Response::Error(c.string()?),
        1 => {
            let status = c.u32()? as i32;
            let tier = CacheTier::from_u8(c.u8()?)?;
            let compile_micros = c.u64()?;
            let total_micros = c.u64()?;
            let stdout = c.bytes()?;
            let nfiles = c.u32()? as usize;
            // Each file needs at least two length prefixes (8 bytes),
            // so a count the remaining frame cannot hold is corruption
            // — reject before allocating for it.
            if nfiles > c.remaining() / 8 {
                return Err(bad_data(format!("file count {nfiles} out of range")));
            }
            let mut files = Vec::with_capacity(nfiles);
            for _ in 0..nfiles {
                files.push((c.string()?, c.bytes()?));
            }
            Response::Run(RunResponse {
                status,
                tier,
                compile_micros,
                total_micros,
                stdout,
                files,
            })
        }
        2 => Response::Text(c.string()?),
        3 => Response::Ack,
        other => return Err(bad_data(format!("bad response tag {other}"))),
    };
    c.done()?;
    Ok(resp)
}

// --- client ---------------------------------------------------------

/// A blocking protocol client over a Unix-domain socket.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a daemon's socket.
    pub fn connect(path: &Path) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        write_request(&mut self.stream, req)?;
        read_response(&mut self.stream)
    }

    /// Compiles and runs a script on the daemon.
    pub fn run(&mut self, req: RunRequest) -> io::Result<RunResponse> {
        match self.round_trip(&Request::Run(req))? {
            Response::Run(r) => Ok(r),
            Response::Error(msg) => Err(io::Error::other(msg)),
            other => Err(bad_data(format!("unexpected response {other:?}"))),
        }
    }

    /// Seeds a file into the daemon's template filesystem.
    pub fn put_file(&mut self, path: &str, bytes: Vec<u8>) -> io::Result<()> {
        match self.round_trip(&Request::PutFile {
            path: path.to_string(),
            bytes,
        })? {
            Response::Ack => Ok(()),
            Response::Error(msg) => Err(io::Error::other(msg)),
            other => Err(bad_data(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetches the metrics surface as JSON.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.round_trip(&Request::Metrics)? {
            Response::Text(s) => Ok(s),
            Response::Error(msg) => Err(io::Error::other(msg)),
            other => Err(bad_data(format!("unexpected response {other:?}"))),
        }
    }

    /// Asks the daemon to stop (returns once acknowledged).
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Ack => Ok(()),
            Response::Error(msg) => Err(io::Error::other(msg)),
            other => Err(bad_data(format!("unexpected response {other:?}"))),
        }
    }
}

// --- admission ------------------------------------------------------

/// A counting semaphore: the `max_concurrent_runs` admission gate.
///
/// The execution backends already bound *intra-run* parallelism with
/// `max_inflight` (regions per wave); this is the same idea one level
/// up — runs admitted concurrently — so a burst of requests queues at
/// the door instead of oversubscribing the machine.
pub struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// A semaphore with `n` permits (clamped to ≥ 1).
    pub fn new(n: usize) -> Semaphore {
        Semaphore {
            permits: Mutex::new(n.max(1)),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a permit is available; the guard releases on drop.
    pub fn acquire(&self) -> SemaphoreGuard<'_> {
        let mut permits = self.permits.lock().expect("semaphore lock");
        while *permits == 0 {
            permits = self.cv.wait(permits).expect("semaphore wait");
        }
        *permits -= 1;
        SemaphoreGuard { sem: self }
    }
}

/// A held semaphore permit.
pub struct SemaphoreGuard<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemaphoreGuard<'_> {
    fn drop(&mut self) {
        *self.sem.permits.lock().expect("semaphore lock") += 1;
        self.sem.cv.notify_one();
    }
}

// --- metrics --------------------------------------------------------

/// Log₂-bucketed latency histogram over microseconds.
struct LatencyHistogram {
    /// `buckets[i]` counts samples with `us < 2^(i+1)` (and `≥ 2^i`
    /// for `i > 0`).
    buckets: [AtomicU64; 40],
    max_us: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_us: AtomicU64::new(0),
        }
    }

    fn record(&self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).saturating_sub(1).min(39);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// The upper bound (µs) of the bucket holding quantile `q`.
    fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return 1u64 << (i + 1);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// The daemon's metrics surface: compile hit/miss per cache tier,
/// admission-queue depth, request-latency histogram, requests served.
/// Queryable over the socket as JSON ([`Request::Metrics`]).
pub struct ServiceMetrics {
    /// Requests of any kind served.
    pub requests: AtomicU64,
    /// Run requests served.
    pub runs: AtomicU64,
    /// Compilations served by the in-memory `compile_cached` LRU.
    pub tier1_hits: AtomicU64,
    /// Compilations served by the on-disk plan cache.
    pub tier2_hits: AtomicU64,
    /// Compilations that ran the full front-end.
    pub compile_misses: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Runs currently waiting for an admission permit (gauge).
    pub queue_depth: AtomicU64,
    /// Runs currently holding an admission permit (gauge).
    pub inflight: AtomicU64,
    /// Runs that went through the profile-guided optimizer
    /// (`width == 0` requests).
    pub adaptive_runs: AtomicU64,
    /// Profile-store lookups that found measured rates for at least
    /// one of the script's commands (mirrors [`ProfileStore::hits`]).
    pub profile_hits: AtomicU64,
    /// Profile-store lookups that found nothing (cold priors used).
    pub profile_misses: AtomicU64,
    /// Width the optimizer chose for the most recent adaptive run.
    pub last_chosen_width: AtomicU64,
    /// Split policy of that run, encoded 0=off 1=sized 2=round-robin.
    pub last_chosen_split: AtomicU64,
    latency: LatencyHistogram,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics {
            requests: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            tier1_hits: AtomicU64::new(0),
            tier2_hits: AtomicU64::new(0),
            compile_misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            adaptive_runs: AtomicU64::new(0),
            profile_hits: AtomicU64::new(0),
            profile_misses: AtomicU64::new(0),
            last_chosen_width: AtomicU64::new(0),
            last_chosen_split: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }
}

impl ServiceMetrics {
    /// Records one run's end-to-end latency.
    pub fn record_latency(&self, us: u64) {
        self.latency.record(us);
    }

    /// Records the optimizer's decision for an adaptive run.
    pub fn record_choice(&self, width: usize, split: SplitPolicy) {
        self.adaptive_runs.fetch_add(1, Ordering::Relaxed);
        self.last_chosen_width
            .store(width as u64, Ordering::Relaxed);
        let code = match split {
            SplitPolicy::Off => 0,
            SplitPolicy::Sized => 1,
            SplitPolicy::RoundRobin => 2,
            SplitPolicy::General => 3,
        };
        self.last_chosen_split.store(code, Ordering::Relaxed);
    }

    /// Renders the surface as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let split = match g(&self.last_chosen_split) {
            1 => "sized",
            2 => "round-robin",
            3 => "general",
            _ => "off",
        };
        format!(
            "{{\"requests_served\":{},\"run_requests\":{},\"tier1_hits\":{},\
             \"tier2_hits\":{},\"compile_misses\":{},\"errors\":{},\
             \"queue_depth\":{},\"inflight\":{},\"adaptive_runs\":{},\
             \"profile_hits\":{},\"profile_misses\":{},\
             \"last_chosen_width\":{},\"last_chosen_split\":\"{}\",\
             \"latency\":{{\"count\":{},\
             \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}}}",
            g(&self.requests),
            g(&self.runs),
            g(&self.tier1_hits),
            g(&self.tier2_hits),
            g(&self.compile_misses),
            g(&self.errors),
            g(&self.queue_depth),
            g(&self.inflight),
            g(&self.adaptive_runs),
            g(&self.profile_hits),
            g(&self.profile_misses),
            g(&self.last_chosen_width),
            split,
            self.latency.count(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.90),
            self.latency.quantile(0.99),
            self.latency.max_us.load(Ordering::Relaxed),
        )
    }
}

// --- disk plan cache ------------------------------------------------

/// FNV-1a over a byte string (the key-file naming hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The on-disk plan-cache tier.
///
/// Layout under the cache root:
///
/// * `plans/<fingerprint-hex>.plan` — an `ExecutionPlan::dump()`,
///   content-addressed by [`ExecutionPlan::fingerprint`];
/// * `keys/<fnv1a(request-key)-hex>.key` — maps a request key (the
///   same `"{cfg.cache_key()}\0{src}"` string `compile_cached` uses)
///   to its main-plan fingerprint plus the width-1 fallback-plan
///   fingerprint (or `-`), with the full key stored for collision
///   verification.
///
/// Writes go to a `.tmp.<pid>` sibling and `rename(2)` into place, so
/// readers never observe a half-written entry. Reads are
/// corruption-tolerant: any parse failure, fingerprint mismatch, or
/// key collision is a silent miss — the caller recompiles and
/// rewrites, never trusts damaged bytes. A small in-memory memo of
/// parsed plans keeps warm hits from re-reading the files.
pub struct DiskPlanCache {
    root: PathBuf,
    /// Parsed-plan memo keyed by request key (bounded; cleared when
    /// it outgrows [`Self::MEMO_CAP`]).
    memo: Mutex<HashMap<String, (Arc<ExecutionPlan>, Option<Arc<ExecutionPlan>>)>>,
    /// On-disk footprint bound; least-recently-written entries are
    /// evicted after each store once the tree exceeds this.
    max_bytes: u64,
}

impl DiskPlanCache {
    const MEMO_CAP: usize = 512;

    /// Default on-disk footprint bound (plan dumps are a few KiB each,
    /// so this holds thousands of entries).
    pub const DEFAULT_MAX_BYTES: u64 = 16 * 1024 * 1024;

    /// Opens (creating if needed) a cache rooted at `root`.
    pub fn open(root: &Path) -> io::Result<DiskPlanCache> {
        std::fs::create_dir_all(root.join("plans"))?;
        std::fs::create_dir_all(root.join("keys"))?;
        Ok(DiskPlanCache {
            root: root.to_path_buf(),
            memo: Mutex::new(HashMap::new()),
            max_bytes: Self::DEFAULT_MAX_BYTES,
        })
    }

    /// Overrides the on-disk footprint bound.
    pub fn with_disk_cap(mut self, max_bytes: u64) -> DiskPlanCache {
        self.max_bytes = max_bytes;
        self
    }

    fn key_path(&self, key: &str) -> PathBuf {
        self.root
            .join("keys")
            .join(format!("{:016x}.key", fnv1a(key.as_bytes())))
    }

    fn plan_path(&self, fingerprint: u64) -> PathBuf {
        self.root
            .join("plans")
            .join(format!("{fingerprint:016x}.plan"))
    }

    /// Atomically writes `bytes` at `path` via a temp-file rename.
    fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Stores a compilation under `key`. Plan files are
    /// content-addressed, so re-storing an existing plan is a no-op
    /// write of identical bytes.
    pub fn store(
        &self,
        key: &str,
        plan: &ExecutionPlan,
        fallback: Option<&ExecutionPlan>,
    ) -> io::Result<()> {
        let fp = plan.fingerprint();
        Self::write_atomic(&self.plan_path(fp), plan.dump().as_bytes())?;
        let fb = match fallback {
            Some(f) => {
                let fbp = f.fingerprint();
                Self::write_atomic(&self.plan_path(fbp), f.dump().as_bytes())?;
                format!("{fbp:016x}")
            }
            None => "-".to_string(),
        };
        let entry = format!("pash-key v1\nplan {fp:016x}\nfallback {fb}\nkey {key:?}\n");
        Self::write_atomic(&self.key_path(key), entry.as_bytes())?;
        // Bound the on-disk footprint, sweeping only this cache's own
        // subtrees (the daemon nests its profile store under the same
        // root). Eviction may orphan a key file whose plan was removed
        // (or vice versa); `load` treats either as a plain miss, so a
        // failed or partial sweep is harmless.
        for sub in ["plans", "keys"] {
            let _ = crate::profile::evict_lru_by_mtime(&self.root.join(sub), self.max_bytes / 2);
        }
        Ok(())
    }

    /// Reads and re-verifies one plan file by fingerprint.
    fn load_plan(&self, fingerprint: u64) -> Option<Arc<ExecutionPlan>> {
        let text = std::fs::read_to_string(self.plan_path(fingerprint)).ok()?;
        let plan = ExecutionPlan::parse_dump(&text).ok()?;
        // The stored dump must hash to its own file name: a flipped
        // byte that still parses is rejected here.
        if plan.fingerprint() != fingerprint {
            return None;
        }
        Some(Arc::new(plan))
    }

    /// Looks `key` up; `None` is a miss (including every corruption
    /// case). `require_fallback` demands the entry carry a fallback
    /// plan (callers that will run under a fallback-enabled supervisor
    /// must not warm-start without one).
    pub fn load(
        &self,
        key: &str,
        require_fallback: bool,
    ) -> Option<(Arc<ExecutionPlan>, Option<Arc<ExecutionPlan>>)> {
        if let Some((plan, fb)) = self.memo.lock().expect("plan memo lock").get(key) {
            if !require_fallback || fb.is_some() {
                return Some((plan.clone(), fb.clone()));
            }
        }
        let text = std::fs::read_to_string(self.key_path(key)).ok()?;
        let mut lines = text.lines();
        if lines.next() != Some("pash-key v1") {
            return None;
        }
        let fp = u64::from_str_radix(lines.next()?.strip_prefix("plan ")?, 16).ok()?;
        let fb_field = lines.next()?.strip_prefix("fallback ")?;
        let stored_key = lines.next()?.strip_prefix("key ")?;
        // Hash collision (or truncated key line): verify the full key.
        if stored_key != format!("{key:?}") {
            return None;
        }
        let fallback_fp = match fb_field {
            "-" => None,
            hex => Some(u64::from_str_radix(hex, 16).ok()?),
        };
        if require_fallback && fallback_fp.is_none() {
            return None;
        }
        let plan = self.load_plan(fp)?;
        let fallback = match fallback_fp {
            Some(fbfp) => Some(self.load_plan(fbfp)?),
            None => None,
        };
        let mut memo = self.memo.lock().expect("plan memo lock");
        if memo.len() >= Self::MEMO_CAP {
            memo.clear();
        }
        memo.insert(key.to_string(), (plan.clone(), fallback.clone()));
        Some((plan, fallback))
    }
}

// --- server ---------------------------------------------------------

/// Server-side knobs.
pub struct ServiceSettings {
    /// Admission-control width: how many runs may execute at once.
    pub max_concurrent_runs: usize,
    /// How long shutdown waits for in-flight requests to finish
    /// writing their responses before force-closing connections. The
    /// drain guarantees no client whose request was already being
    /// served sees a torn (half-written) response.
    pub drain_deadline: std::time::Duration,
}

impl Default for ServiceSettings {
    fn default() -> Self {
        ServiceSettings {
            max_concurrent_runs: 2,
            drain_deadline: std::time::Duration::from_secs(5),
        }
    }
}

/// The request handler the embedding crate supplies: it sees `Run` and
/// `PutFile` requests (`Metrics` and `Shutdown` are handled by the
/// server). For `Run`, `tier`/`compile_micros` in the returned
/// [`RunResponse`] report cache behaviour; the server fills
/// `total_micros` and the latency histogram.
pub type Handler = dyn Fn(Request) -> Response + Send + Sync;

/// Binds a Unix-domain socket at `path`, replacing a stale socket file
/// if one is present.
pub fn bind(path: &Path) -> io::Result<UnixListener> {
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    UnixListener::bind(path)
}

/// The live-connection registry shutdown drains: each entry is a
/// handle to the connection's socket plus its busy flag (set while a
/// request is being served and its response written).
type ConnRegistry = Arc<Mutex<HashMap<u64, (UnixStream, Arc<AtomicBool>)>>>;

/// The accept loop: one thread per connection, requests served in
/// order per connection, `Run` requests gated by the admission
/// semaphore and timed into the latency histogram.
///
/// Returns after a [`Request::Shutdown`] is acknowledged and every
/// connection has drained: in-flight requests get up to
/// [`ServiceSettings::drain_deadline`] to finish writing their
/// responses, then remaining connections are force-closed (waking
/// readers blocked on idle clients) and the threads joined — so a
/// client whose request was already being served never sees a torn
/// response. The socket file is removed on the way out.
pub fn serve(
    listener: UnixListener,
    socket_path: &Path,
    metrics: Arc<ServiceMetrics>,
    settings: ServiceSettings,
    handler: Arc<Handler>,
) -> io::Result<()> {
    let running = Arc::new(AtomicBool::new(true));
    let admission = Arc::new(Semaphore::new(settings.max_concurrent_runs));
    let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));
    let mut workers = Vec::new();
    let mut next_id: u64 = 0;
    while running.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(e) => {
                if running.load(Ordering::SeqCst) {
                    return Err(e);
                }
                break;
            }
        };
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let id = next_id;
        next_id += 1;
        let busy = Arc::new(AtomicBool::new(false));
        if let Ok(handle) = stream.try_clone() {
            conns
                .lock()
                .expect("conn registry lock")
                .insert(id, (handle, busy.clone()));
        }
        let metrics = metrics.clone();
        let handler = handler.clone();
        let admission = admission.clone();
        let running = running.clone();
        let conns = conns.clone();
        let wake_path = socket_path.to_path_buf();
        workers.push(std::thread::spawn(move || {
            serve_connection(
                stream, &metrics, &handler, &admission, &running, &wake_path, &busy,
            );
            conns.lock().expect("conn registry lock").remove(&id);
        }));
    }
    // Drain: wait (bounded) for busy connections to finish their
    // response writes, then force-close whatever is left so readers
    // blocked on idle clients wake up and the joins below terminate.
    let deadline = Instant::now() + settings.drain_deadline;
    loop {
        let any_busy = conns
            .lock()
            .expect("conn registry lock")
            .values()
            .any(|(_, busy)| busy.load(Ordering::SeqCst));
        if !any_busy || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    for (_, (stream, _)) in conns.lock().expect("conn registry lock").drain() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: UnixStream,
    metrics: &ServiceMetrics,
    handler: &Arc<Handler>,
    admission: &Semaphore,
    running: &AtomicBool,
    wake_path: &Path,
    busy: &AtomicBool,
) {
    loop {
        let req = match read_request(&mut stream) {
            Ok(Some(req)) => req,
            Ok(None) | Err(_) => return,
        };
        busy.store(true, Ordering::SeqCst);
        metrics.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match req {
            Request::Metrics => Response::Text(metrics.to_json()),
            Request::Shutdown => {
                let _ = write_response(&mut stream, &Response::Ack);
                busy.store(false, Ordering::SeqCst);
                running.store(false, Ordering::SeqCst);
                // Unblock the accept loop (a failed connect means the
                // listener is already past accept).
                let _ = UnixStream::connect(wake_path);
                return;
            }
            Request::Run(_) => {
                metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                let permit = admission.acquire();
                metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                metrics.inflight.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                let resp = handler(req);
                let us = start.elapsed().as_micros() as u64;
                metrics.inflight.fetch_sub(1, Ordering::Relaxed);
                drop(permit);
                metrics.runs.fetch_add(1, Ordering::Relaxed);
                metrics.record_latency(us);
                match resp {
                    Response::Run(mut r) => {
                        r.total_micros = us;
                        match r.tier {
                            CacheTier::Cold => &metrics.compile_misses,
                            CacheTier::Memory => &metrics.tier1_hits,
                            CacheTier::Disk => &metrics.tier2_hits,
                        }
                        .fetch_add(1, Ordering::Relaxed);
                        Response::Run(r)
                    }
                    other => other,
                }
            }
            other => handler(other),
        };
        if matches!(resp, Response::Error(_)) {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        let wrote = write_response(&mut stream, &resp);
        busy.store(false, Ordering::SeqCst);
        // A drain in progress: this response is complete, and the
        // connection closes cleanly instead of reading another
        // request the dying daemon could not honour.
        if wrote.is_err() || !running.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_round_trips() {
        let reqs = [
            Request::Run(RunRequest {
                script: "cat in.txt | sort".to_string(),
                backend: "threads".to_string(),
                width: 8,
                split: SplitPolicy::RoundRobin,
                stdin: b"line\n".to_vec(),
            }),
            Request::PutFile {
                path: "in.txt".to_string(),
                bytes: vec![0, 1, 2, 255],
            },
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let mut buf = Vec::new();
            write_request(&mut buf, &req).expect("encode");
            let got = read_request(&mut io::Cursor::new(buf))
                .expect("decode")
                .expect("some");
            assert_eq!(got, req);
        }
        assert_eq!(
            read_request(&mut io::Cursor::new(Vec::new())).expect("eof"),
            None
        );
    }

    #[test]
    fn response_codec_round_trips() {
        let resps = [
            Response::Error("nope".to_string()),
            Response::Run(RunResponse {
                status: -13,
                tier: CacheTier::Disk,
                compile_micros: 42,
                total_micros: 99,
                stdout: b"out".to_vec(),
                files: vec![("out.txt".to_string(), b"data".to_vec())],
            }),
            Response::Text("{}".to_string()),
            Response::Ack,
        ];
        for resp in resps {
            let mut buf = Vec::new();
            write_response(&mut buf, &resp).expect("encode");
            let got = read_response(&mut io::Cursor::new(buf)).expect("decode");
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn corrupt_frames_are_invalid_data() {
        // Oversized frame length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_request(&mut io::Cursor::new(buf)).expect_err("oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncated payload.
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::PutFile {
                path: "p".to_string(),
                bytes: vec![1; 64],
            },
        )
        .expect("encode");
        buf.truncate(buf.len() - 10);
        assert!(read_request(&mut io::Cursor::new(buf)).is_err());
        // Bad op byte.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[99]).expect("frame");
        let err = read_request(&mut io::Cursor::new(buf)).expect_err("bad op");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Arbitrary garbage fed to the decoders: a structured
        // io::Error or a clean EOF, never a panic — and transparently
        // never a hang, since decoding is a pure function of the
        // bytes. Random payloads can legitimately decode (op byte 3 =
        // Metrics), so only the error *kind* is constrained.
        #[test]
        fn prop_decoders_survive_garbage(
            data in proptest::collection::vec(0u8..255, 0..2048),
        ) {
            for result in [
                read_request(&mut io::Cursor::new(data.clone())).map(|_| ()),
                read_response(&mut io::Cursor::new(data.clone())).map(|_| ()),
            ] {
                if let Err(e) = result {
                    prop_assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                        ),
                        "unstructured error: {e:?}"
                    );
                }
            }
        }

        // A valid request truncated at every possible point: byte-
        // identical round-trip when whole, clean EOF when cut at zero,
        // a structured error anywhere in between — never a panic and
        // never a partial decode passed off as success.
        #[test]
        fn prop_truncated_requests_error_cleanly(
            script in "[a-z |.><&;-]{0,64}",
            stdin in proptest::collection::vec(0u8..255, 0..256),
            cut_frac in 0.0f64..1.0,
        ) {
            let req = Request::Run(RunRequest {
                script,
                backend: "threads".to_string(),
                width: 4,
                split: SplitPolicy::RoundRobin,
                stdin,
            });
            let mut buf = Vec::new();
            write_request(&mut buf, &req).expect("encode");
            let whole = read_request(&mut io::Cursor::new(buf.clone()))
                .expect("decode")
                .expect("some");
            prop_assert_eq!(&whole, &req);
            let cut = ((buf.len() as f64) * cut_frac) as usize;
            if cut < buf.len() {
                match read_request(&mut io::Cursor::new(buf[..cut].to_vec())) {
                    Ok(None) => prop_assert_eq!(cut, 0, "partial frame decoded as EOF"),
                    Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
                    Err(e) => prop_assert!(matches!(
                        e.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    )),
                }
            }
        }

        // Oversized length prefixes are rejected before allocation,
        // whatever follows them.
        #[test]
        fn prop_oversized_frames_are_rejected(
            extra in 1u64..u32::MAX as u64 - MAX_FRAME as u64,
            tail in proptest::collection::vec(0u8..255, 0..64),
        ) {
            let len = (MAX_FRAME as u64 + extra) as u32;
            let mut buf = len.to_le_bytes().to_vec();
            buf.extend_from_slice(&tail);
            let err = read_request(&mut io::Cursor::new(buf)).expect_err("oversized");
            prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }

        // A run-response frame whose claimed file count exceeds what
        // the frame could physically hold is rejected up front (no
        // attacker-sized allocation).
        #[test]
        fn prop_inflated_file_counts_are_rejected(nfiles in 1u32..u32::MAX) {
            let mut p = Vec::new();
            p.push(1u8); // Response::Run
            put_u32(&mut p, 0); // status
            p.push(0); // tier
            put_u64(&mut p, 0);
            put_u64(&mut p, 0);
            put_bytes(&mut p, b""); // stdout
            put_u32(&mut p, nfiles);
            let mut buf = Vec::new();
            write_frame(&mut buf, &p).expect("frame");
            let err = read_response(&mut io::Cursor::new(buf)).expect_err("inflated");
            prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn semaphore_bounds_concurrency() {
        use std::sync::atomic::AtomicUsize;
        let sem = Arc::new(Semaphore::new(2));
        let inflight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (sem, inflight, peak) = (sem.clone(), inflight.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let _g = sem.acquire();
                let now = inflight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                inflight.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission exceeded");
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let h = LatencyHistogram::new();
        for us in [3u64, 10, 100, 1000, 10_000, 10_000, 10_000] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 >= 10_000);
        assert_eq!(h.max_us.load(Ordering::Relaxed), 10_000);
    }

    fn tiny_plan(text: &str) -> ExecutionPlan {
        ExecutionPlan {
            steps: vec![pash_core::plan::PlanStep::Shell {
                text: text.to_string(),
                data_noop: false,
            }],
        }
    }

    #[test]
    fn disk_cache_round_trips_and_tolerates_corruption() {
        let root = std::env::temp_dir().join(format!("pash-dpc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = DiskPlanCache::open(&root).expect("open");
        let plan = tiny_plan("echo hi");
        let fb = tiny_plan("echo fallback");
        cache.store("k1", &plan, Some(&fb)).expect("store");
        let (got, got_fb) = cache.load("k1", true).expect("hit");
        assert_eq!(got.dump(), plan.dump());
        assert_eq!(got_fb.expect("fallback").dump(), fb.dump());
        assert!(cache.load("absent", false).is_none());
        // A second cache instance (fresh memo) reads from disk.
        let cache2 = DiskPlanCache::open(&root).expect("open");
        assert!(cache2.load("k1", false).is_some());
        // Truncate the plan file: the fresh instance must miss, not
        // return a damaged plan.
        let fp = plan.fingerprint();
        let pp = cache2.plan_path(fp);
        let bytes = std::fs::read(&pp).expect("read plan");
        std::fs::write(&pp, &bytes[..bytes.len() / 2]).expect("truncate");
        let cache3 = DiskPlanCache::open(&root).expect("open");
        assert!(
            cache3.load("k1", false).is_none(),
            "corrupt entry must miss"
        );
        // Re-storing heals the entry.
        cache3.store("k1", &plan, None).expect("restore");
        assert!(cache3.load("k1", false).is_some());
        assert!(
            cache3.load("k1", true).is_none(),
            "entry without fallback must miss when fallback is required"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_cache_rejects_key_collisions() {
        let root = std::env::temp_dir().join(format!("pash-dpc-coll-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = DiskPlanCache::open(&root).expect("open");
        let plan = tiny_plan("echo hi");
        cache.store("honest", &plan, None).expect("store");
        // Forge a different key whose file we overwrite in place: the
        // stored full key no longer matches, so the lookup must miss.
        let forged = cache.key_path("honest");
        let text = std::fs::read_to_string(&forged).expect("read key");
        let tampered = text.replace("\"honest\"", "\"tampered\"");
        std::fs::write(&forged, tampered).expect("tamper");
        assert!(cache.load("honest", false).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_cache_evicts_oldest_entries_past_cap() {
        let root = std::env::temp_dir().join(format!("pash-dpc-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        // A cap small enough that a handful of entries overflow it.
        let cache = DiskPlanCache::open(&root).expect("open").with_disk_cap(512);
        let now = std::time::SystemTime::now();
        let mut seen = std::collections::HashSet::new();
        for i in 0..8u64 {
            let plan = tiny_plan(&format!("echo entry-{i} with some padding text"));
            cache.store(&format!("k{i}"), &plan, None).expect("store");
            // Backdate each entry's files once, in store order, so the
            // mtime-LRU sweep sees an unambiguous write sequence.
            for dir in ["plans", "keys"] {
                for f in std::fs::read_dir(root.join(dir)).expect("ls") {
                    let path = f.expect("entry").path();
                    if seen.insert(path.clone()) {
                        let _ = std::fs::File::options()
                            .write(true)
                            .open(&path)
                            .and_then(|h| {
                                h.set_modified(now - std::time::Duration::from_secs(100 - i))
                            });
                    }
                }
            }
        }
        let tree_size: u64 = ["plans", "keys"]
            .iter()
            .flat_map(|d| std::fs::read_dir(root.join(d)).expect("ls"))
            .map(|f| f.expect("entry").metadata().expect("meta").len())
            .sum();
        assert!(tree_size <= 512, "cap not enforced: {tree_size}");
        // Early entries were evicted; the newest still loads (a fresh
        // instance, so the hit comes from disk, not the memo).
        let fresh = DiskPlanCache::open(&root).expect("open");
        assert!(fresh.load("k0", false).is_none(), "oldest should be gone");
        assert!(fresh.load("k7", false).is_some(), "newest should survive");
        let _ = std::fs::remove_dir_all(&root);
    }
}
