//! The tagged-block stream format behind `r_split` (order-aware
//! round-robin distribution).
//!
//! A framed stream is a sequence of records:
//!
//! ```text
//! +------+----------------+----------------+---------------+
//! | \x01RSB | tag: u64 LE | len: u32 LE    | payload (len) |
//! +------+----------------+----------------+---------------+
//! ```
//!
//! Tags are assigned by the splitter in input order (0, 1, 2, …) and
//! travel with the block through any number of stateless stages; the
//! reordering aggregator (`pash-agg-reorder`) strips the frames and
//! writes payloads back in tag order. The 4-byte magic guards against
//! a raw stream being fed to a frame consumer (or vice versa): the
//! first byte is `\x01`, which never starts a text line produced by
//! the supported commands.

use std::io::{self, Read, Write};

/// Frame magic: `\x01RSB` ("round-robin split block").
pub const MAGIC: [u8; 4] = [0x01, b'R', b'S', b'B'];
/// Fixed header length: magic + u64 tag + u32 payload length.
pub const HEADER_LEN: usize = 16;
/// Largest payload a reader accepts (256 MiB). Splitters deal blocks
/// orders of magnitude smaller; a length beyond this is corruption,
/// and rejecting it up front keeps a flipped length bit from turning
/// into a giant allocation.
pub const MAX_FRAME_LEN: usize = 1 << 28;
/// Largest tag a reader accepts. Tags count blocks from zero, so a
/// tag needing more than 48 bits means the header bytes were damaged
/// (e.g. a corrupted stream where the magic happened to survive).
pub const MAX_FRAME_TAG: u64 = 1 << 48;

/// Writes one frame. A broken pipe is reported as such (callers that
/// tolerate early-exiting consumers map it to "abandoned").
pub fn write_frame(out: &mut dyn Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..12].copy_from_slice(&tag.to_le_bytes());
    header[12..16].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    out.write_all(&header)?;
    out.write_all(payload)
}

/// Reads frames off a byte stream.
pub struct FrameReader<R> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        FrameReader { inner }
    }

    /// Reads the next frame, `None` at a clean end-of-stream. A
    /// truncated header or payload, or a bad magic, is an
    /// `InvalidData` error — silent tail loss would corrupt the
    /// reordered output undetectably.
    pub fn next_frame(&mut self) -> io::Result<Option<(u64, Vec<u8>)>> {
        let mut header = [0u8; HEADER_LEN];
        let mut got = 0;
        while got < HEADER_LEN {
            let n = self.inner.read(&mut header[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "truncated frame header",
                ));
            }
            got += n;
        }
        if header[..4] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad frame magic (raw bytes on a framed stream?)",
            ));
        }
        let tag = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        if tag > MAX_FRAME_TAG {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame tag {tag} out of range (corrupted header?)"),
            ));
        }
        let len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} out of range (corrupted header?)"),
            ));
        }
        let mut payload = vec![0u8; len];
        self.inner.read_exact(&mut payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                io::Error::new(io::ErrorKind::InvalidData, "truncated frame payload")
            } else {
                e
            }
        })?;
        Ok(Some((tag, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_tags_and_payloads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0, b"alpha\n").expect("write");
        write_frame(&mut buf, 7, b"").expect("write");
        write_frame(&mut buf, 2, b"beta\ngamma\n").expect("write");
        let mut r = FrameReader::new(io::Cursor::new(buf));
        assert_eq!(
            r.next_frame().expect("frame"),
            Some((0, b"alpha\n".to_vec()))
        );
        assert_eq!(r.next_frame().expect("frame"), Some((7, Vec::new())));
        assert_eq!(
            r.next_frame().expect("frame"),
            Some((2, b"beta\ngamma\n".to_vec()))
        );
        assert_eq!(r.next_frame().expect("eof"), None);
    }

    #[test]
    fn bad_magic_is_invalid_data() {
        let mut r = FrameReader::new(io::Cursor::new(b"hello world, not a frame".to_vec()));
        let err = r.next_frame().expect_err("bad magic");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"full payload").expect("write");
        buf.truncate(buf.len() - 3);
        let mut r = FrameReader::new(io::Cursor::new(buf));
        let err = r.next_frame().expect_err("truncated");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut half_header = vec![0x01, b'R', b'S'];
        half_header.truncate(3);
        let mut r = FrameReader::new(io::Cursor::new(half_header));
        let err = r.next_frame().expect_err("truncated header");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// Asserts the stream fails with `InvalidData` whose message
    /// contains `what`.
    fn expect_invalid(bytes: Vec<u8>, what: &str) {
        let mut r = FrameReader::new(io::Cursor::new(bytes));
        let err = r.next_frame().expect_err(what);
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{what}");
        assert!(err.to_string().contains(what), "{what}: got {err}");
    }

    #[test]
    fn truncated_magic_is_classified() {
        // EOF two bytes into the magic: "truncated frame header".
        expect_invalid(MAGIC[..2].to_vec(), "truncated frame header");
    }

    #[test]
    fn truncated_length_word_is_classified() {
        // The magic and tag arrive, the length word does not.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&5u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes()[..2]);
        expect_invalid(buf, "truncated frame header");
    }

    #[test]
    fn short_payload_at_eof_is_classified() {
        // A full header promising 8 bytes, only 3 delivered.
        let mut buf = Vec::new();
        write_frame(&mut buf, 0, b"12345678").expect("write");
        buf.truncate(HEADER_LEN + 3);
        expect_invalid(buf, "truncated frame payload");
    }

    #[test]
    fn tag_out_of_range_is_classified() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        expect_invalid(buf, "tag");
    }

    #[test]
    fn oversized_length_is_classified() {
        // A corrupted length word must be rejected before allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        expect_invalid(buf, "length");
    }
}
