//! The fault-injection plane and the structured execution-error
//! taxonomy.
//!
//! PaSh's transparency guarantee — parallel output byte-identical to
//! `sh` — is only worth stating if it survives the failure modes real
//! deployments hit: a worker dying mid-stream, a spawn or `mkfifo`
//! failing, a framed block arriving truncated or corrupted, an edge
//! that stalls. This module provides
//!
//! * [`FaultPlan`] — a deterministic, seeded description of *one*
//!   fault to inject into region execution. The supervisor arms it
//!   once per attempt ([`FaultPlan::arm`]); the armed form
//!   ([`ArmedFault`]) names a concrete node or edge of the region
//!   picked by a seeded hash over the eligible sites, so the same
//!   seed always hits the same site. A budget bounds how many
//!   attempts get the fault (budget 1 = fail once then run clean,
//!   the retry scenario; an effectively-unbounded budget forces the
//!   sequential fallback).
//! * [`FaultyWriter`] — the stream-level delivery vehicle: wraps an
//!   edge writer to truncate, corrupt, stall, or kill at a byte
//!   offset. The threaded backend wraps in-process edge writers; the
//!   process backend ships the same spec to the armed child via the
//!   `PASH_FAULT` environment variable (see [`ArmedFault::env_spec`])
//!   and the multicall wraps its own stdout.
//! * [`ExecError`] — the structured error both backends raise:
//!   a transient/fatal classification plus the failing node/edge, so
//!   the supervisor can decide between retry, fallback, and giving
//!   up without string-matching `io::Error` text.
//!
//! Injection is a test/verification plane: it is deterministic, off
//! by default, and never enabled on the sequential fallback path.

use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pash_core::plan::{PlanEdgeId, PlanNodeId, PlanOp, RegionPlan};

/// Exit status a multicall child reports for an infrastructure
/// failure (corrupt frame, injected death) — distinguishable from
/// any status a user command legitimately produces in our plans and
/// from the signal range (≥ 128).
pub const INFRA_STATUS: i32 = 120;

/// Whether a failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Environmental / timing failure: a retry (or the sequential
    /// fallback) may well succeed — dead worker, truncated frame,
    /// failed spawn, deadline kill.
    Transient,
    /// Deterministic failure the sequential run would hit identically
    /// (missing input file, unknown command, invalid plan): retrying
    /// or falling back cannot help.
    Fatal,
}

/// A structured execution error: classification plus the failing
/// plan site, wrapping the underlying `io::Error`.
#[derive(Debug)]
pub struct ExecError {
    /// Retry-worthiness of the failure.
    pub class: FaultClass,
    /// The plan node that failed, when attributable.
    pub node: Option<PlanNodeId>,
    /// The plan edge that failed, when attributable.
    pub edge: Option<PlanEdgeId>,
    /// Which runtime operation failed ("spawn", "wait", "deadline",
    /// "edge", "node", …) — stable tokens the supervisor keys on.
    pub context: &'static str,
    /// The underlying error.
    pub source: io::Error,
}

impl ExecError {
    /// A transient (retryable) error.
    pub fn transient(context: &'static str, source: io::Error) -> ExecError {
        ExecError {
            class: FaultClass::Transient,
            node: None,
            edge: None,
            context,
            source,
        }
    }

    /// A fatal (non-retryable) error.
    pub fn fatal(context: &'static str, source: io::Error) -> ExecError {
        ExecError {
            class: FaultClass::Fatal,
            node: None,
            edge: None,
            context,
            source,
        }
    }

    /// Classifies a plain `io::Error` by kind: data corruption,
    /// timeouts, and interruptions are transient (the parallel
    /// plumbing failed); everything else — missing files, permission
    /// errors, invalid plans — would fail sequentially too.
    pub fn classify(context: &'static str, source: io::Error) -> ExecError {
        let class = match source.kind() {
            io::ErrorKind::InvalidData
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof => FaultClass::Transient,
            _ => FaultClass::Fatal,
        };
        ExecError {
            class,
            node: None,
            edge: None,
            context,
            source,
        }
    }

    /// Attaches the failing node.
    pub fn at_node(mut self, node: PlanNodeId) -> ExecError {
        self.node = Some(node);
        self
    }

    /// Attaches the failing edge.
    pub fn at_edge(mut self, edge: PlanEdgeId) -> ExecError {
        self.edge = Some(edge);
        self
    }

    /// Whether a retry or fallback may succeed.
    pub fn is_transient(&self) -> bool {
        self.class == FaultClass::Transient
    }

    /// Whether this failure is a region-deadline expiry (the caller
    /// escalated, or must escalate, to killing the region).
    pub fn is_deadline(&self) -> bool {
        self.context == "region deadline"
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let class = match self.class {
            FaultClass::Transient => "transient",
            FaultClass::Fatal => "fatal",
        };
        write!(f, "{class} {} failure", self.context)?;
        if let Some(n) = self.node {
            write!(f, " at node {n}")?;
        }
        if let Some(e) = self.edge {
            write!(f, " at edge {e}")?;
        }
        write!(f, ": {}", self.source)
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<ExecError> for io::Error {
    fn from(e: ExecError) -> io::Error {
        io::Error::new(e.source.kind(), e.to_string())
    }
}

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker dies mid-stream (threads: its node thread errors out;
    /// processes: the child aborts) after writing a few bytes.
    KillWorker,
    /// Spawning a node fails outright.
    SpawnFail,
    /// Spawning a node is delayed (latency fault; the attempt still
    /// succeeds, exercising the supervisor's patience, not its
    /// recovery).
    SpawnDelay,
    /// Creating a FIFO (processes) / wiring an edge (threads) fails.
    MkfifoFail,
    /// A framed edge is truncated mid-frame: the writer silently
    /// swallows everything past the offset.
    Truncate,
    /// A framed edge is corrupted from a byte offset on (XOR), which
    /// the frame magic check downstream must catch.
    Corrupt,
    /// An internal edge stalls (stops moving bytes) at an offset for
    /// a duration — the wedged-child scenario the region deadline
    /// must catch.
    Stall,
    /// The coordinator→worker connection drops mid-request: the
    /// length-prefixed request is cut after a few bytes and the
    /// socket closed (remote backend only).
    ConnDrop,
    /// The worker is slow: it sleeps for the stall duration before
    /// streaming results (remote backend only). On its own this
    /// exercises the supervisor's patience; with a region deadline it
    /// becomes the wedged-worker socket-teardown scenario.
    SlowWorker,
    /// The worker's framed response stream is cut mid-frame and the
    /// socket closed — the half-written-frame shape the frame header
    /// checks must catch end-to-end (remote backend only).
    TornFrame,
}

impl FaultKind {
    /// Every kind, for sweep suites.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::KillWorker,
        FaultKind::SpawnFail,
        FaultKind::SpawnDelay,
        FaultKind::MkfifoFail,
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Stall,
        FaultKind::ConnDrop,
        FaultKind::SlowWorker,
        FaultKind::TornFrame,
    ];

    /// A stable display/parse name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::KillWorker => "kill-worker",
            FaultKind::SpawnFail => "spawn-fail",
            FaultKind::SpawnDelay => "spawn-delay",
            FaultKind::MkfifoFail => "mkfifo-fail",
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Stall => "stall",
            FaultKind::ConnDrop => "conn-drop",
            FaultKind::SlowWorker => "slow-worker",
            FaultKind::TornFrame => "torn-frame",
        }
    }

    /// Parses a stable name back into a kind.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this kind targets the coordinator↔worker connection
    /// (remote backend only). Remote kinds have no eligible site on
    /// the local backends, so arming them there is a no-op and local
    /// sweeps over [`FaultKind::ALL`] stay byte-clean.
    pub fn is_remote(self) -> bool {
        matches!(
            self,
            FaultKind::ConnDrop | FaultKind::SlowWorker | FaultKind::TornFrame
        )
    }
}

/// A cancellable flag shared between a stalling writer and the
/// supervisor's deadline watchdog, so a deadline kill does not have
/// to sit out the stall.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Signals cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was signalled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Sleeps up to `dur`, waking early if cancelled.
    pub fn sleep(&self, dur: Duration) {
        let slice = Duration::from_millis(5);
        let mut left = dur;
        while !left.is_zero() && !self.is_cancelled() {
            let d = left.min(slice);
            std::thread::sleep(d);
            left = left.saturating_sub(d);
        }
    }
}

/// One fault to inject, deterministically: kind, seed, and budget.
///
/// Cloning shares the budget, so the supervisor's retries draw from
/// the same pool (budget 1 ⇒ exactly the first attempt is faulty).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Seeds the site choice and default offsets.
    pub seed: u64,
    budget: Arc<AtomicU32>,
    offset: Option<u64>,
    delay: Option<Duration>,
    stall: Option<Duration>,
    cancel: CancelToken,
}

impl FaultPlan {
    /// A single-shot fault of the given kind and seed.
    pub fn new(kind: FaultKind, seed: u64) -> FaultPlan {
        FaultPlan {
            kind,
            seed,
            budget: Arc::new(AtomicU32::new(1)),
            offset: None,
            delay: None,
            stall: None,
            cancel: CancelToken::new(),
        }
    }

    /// How many region attempts get the fault (default 1).
    /// `u32::MAX` is effectively "every attempt" — the fallback
    /// scenario.
    pub fn budget(mut self, n: u32) -> FaultPlan {
        self.budget = Arc::new(AtomicU32::new(n));
        self
    }

    /// Byte offset override for stream faults.
    pub fn offset(mut self, o: u64) -> FaultPlan {
        self.offset = Some(o);
        self
    }

    /// Delay override for [`FaultKind::SpawnDelay`].
    pub fn delay(mut self, d: Duration) -> FaultPlan {
        self.delay = Some(d);
        self
    }

    /// Stall duration override for [`FaultKind::Stall`].
    pub fn stall(mut self, d: Duration) -> FaultPlan {
        self.stall = Some(d);
        self
    }

    /// The cancel token stalls honour (the deadline watchdog cancels
    /// it so a kill does not wait out the stall).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Arms the fault against one region attempt: decrements the
    /// budget and picks the target site by seeded hash. `None` when
    /// the budget is spent or the region has no eligible site (e.g. a
    /// corruption fault on a plan with no framed edges, or a remote
    /// kind on a local backend).
    pub fn arm(&self, r: &RegionPlan) -> Option<ArmedFault> {
        let (node, edge) = pick_site(self.kind, self.seed, r)?;
        self.claim_budget()?;
        let sm = splitmix64(self.seed);
        let offset = self.offset.unwrap_or(match self.kind {
            // Mid-header: a truncated frame header is always detected.
            FaultKind::Truncate => (sm % 12).max(2),
            // Within the 4-byte magic: corruption is always detected.
            FaultKind::Corrupt => sm % 4,
            _ => 1 + sm % 64,
        });
        Some(ArmedFault {
            kind: self.kind,
            node,
            edge,
            offset,
            delay: self.delay.unwrap_or(Duration::from_millis(20)),
            stall: self.stall.unwrap_or(Duration::from_millis(50)),
            cancel: self.cancel.clone(),
        })
    }

    /// Arms the fault against one *remote* region attempt. Remote-only
    /// kinds (connection drop, slow worker, torn frame) target the
    /// coordinator↔worker connection and are eligible on any region
    /// with an `Exec` node; local kinds arm exactly as
    /// [`FaultPlan::arm`] does, and the coordinator ships the armed
    /// form to the worker for in-attempt delivery.
    pub fn arm_remote(&self, r: &RegionPlan) -> Option<ArmedFault> {
        if !self.kind.is_remote() {
            return self.arm(r);
        }
        // Attribute the connection fault to a seeded Exec node, the
        // same family worker-death faults target.
        let nodes: Vec<PlanNodeId> = r
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, PlanOp::Exec { .. }))
            .map(|(i, _)| i)
            .collect();
        if nodes.is_empty() {
            return None;
        }
        self.claim_budget()?;
        let sm = splitmix64(self.seed);
        let node = nodes[(sm % nodes.len() as u64) as usize];
        let offset = self.offset.unwrap_or(match self.kind {
            // Cut inside the request's 4-byte length prefix or just
            // past it: the worker always sees a malformed request.
            FaultKind::ConnDrop => (sm % 64).max(1),
            // Mid-frame-header: a torn response frame is always
            // detected by the reader's magic/length checks.
            FaultKind::TornFrame => (sm % 12).max(2),
            _ => 1 + sm % 64,
        });
        Some(ArmedFault {
            kind: self.kind,
            node: Some(node),
            edge: None,
            offset,
            delay: self.delay.unwrap_or(Duration::from_millis(20)),
            stall: self.stall.unwrap_or(Duration::from_millis(50)),
            cancel: self.cancel.clone(),
        })
    }

    /// Claims one unit of budget without underflowing concurrent
    /// arms. `None` when the budget is spent.
    fn claim_budget(&self) -> Option<()> {
        let mut cur = self.budget.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return None;
            }
            let next = if cur == u32::MAX { cur } else { cur - 1 };
            match self
                .budget
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(v) => cur = v,
            }
        }
        Some(())
    }
}

/// SplitMix64: the seeded hash behind site choice, offsets, and the
/// supervisor's backoff jitter.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Picks the (node, edge) target for `kind` in `r`, seeded.
///
/// Eligibility keeps the differential guarantee checkable:
///
/// * worker/spawn faults target `Exec` nodes (real commands — the
///   things that die in deployments);
/// * truncation/corruption target *framed* edges only, where the
///   frame magic/length checks make the damage detectable; silent
///   raw-byte damage is indistinguishable from legitimate output and
///   no supervisor could catch it;
/// * stalls target internal pipe edges fed by a node's stdout (so
///   the process backend can deliver them by wrapping that stdout);
/// * mkfifo faults target internal pipe edges.
fn pick_site(
    kind: FaultKind,
    seed: u64,
    r: &RegionPlan,
) -> Option<(Option<PlanNodeId>, Option<PlanEdgeId>)> {
    // The edge a node's stdout feeds, if any.
    let stdout_edge = |n: PlanNodeId| -> Option<PlanEdgeId> {
        let spec = r.nodes[n].spawn_spec();
        spec.stdout_output.map(|j| r.nodes[n].outputs[j])
    };
    match kind {
        FaultKind::KillWorker | FaultKind::SpawnFail | FaultKind::SpawnDelay => {
            let nodes: Vec<PlanNodeId> = r
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| matches!(n.op, PlanOp::Exec { .. }))
                .map(|(i, _)| i)
                .collect();
            if nodes.is_empty() {
                return None;
            }
            let n = nodes[(splitmix64(seed) % nodes.len() as u64) as usize];
            Some((Some(n), stdout_edge(n)))
        }
        FaultKind::Truncate | FaultKind::Corrupt => {
            let edges: Vec<(PlanNodeId, PlanEdgeId)> = r
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| matches!(n.op, PlanOp::Exec { framed: true, .. }))
                .filter_map(|(i, _)| stdout_edge(i).map(|e| (i, e)))
                .collect();
            if edges.is_empty() {
                return None;
            }
            let (n, e) = edges[(splitmix64(seed) % edges.len() as u64) as usize];
            Some((Some(n), Some(e)))
        }
        FaultKind::Stall => {
            let edges: Vec<(PlanNodeId, PlanEdgeId)> = r
                .nodes
                .iter()
                .enumerate()
                .filter_map(|(i, _)| stdout_edge(i).map(|e| (i, e)))
                .filter(|&(_, e)| r.edges[e].kind == pash_core::plan::EndpointKind::Pipe)
                .collect();
            if edges.is_empty() {
                return None;
            }
            let (n, e) = edges[(splitmix64(seed) % edges.len() as u64) as usize];
            Some((Some(n), Some(e)))
        }
        FaultKind::MkfifoFail => {
            let edges: Vec<PlanEdgeId> = r.internal_pipes().collect();
            if edges.is_empty() {
                return None;
            }
            let e = edges[(splitmix64(seed) % edges.len() as u64) as usize];
            Some((None, Some(e)))
        }
        // Remote kinds target the coordinator↔worker connection; the
        // local backends have no such site, so sweeping them over
        // `FaultKind::ALL` is a clean no-op (see
        // [`FaultPlan::arm_remote`]).
        FaultKind::ConnDrop | FaultKind::SlowWorker | FaultKind::TornFrame => None,
    }
}

/// A fault armed against one region attempt: a concrete target plus
/// resolved offsets.
#[derive(Debug, Clone)]
pub struct ArmedFault {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Target node (worker/spawn/stream faults).
    pub node: Option<PlanNodeId>,
    /// Target edge (stream/edge-setup faults).
    pub edge: Option<PlanEdgeId>,
    /// Byte offset for stream faults.
    pub offset: u64,
    /// Spawn delay for [`FaultKind::SpawnDelay`].
    pub delay: Duration,
    /// Stall duration for [`FaultKind::Stall`].
    pub stall: Duration,
    /// Cancels in-flight stalls (deadline watchdog).
    pub cancel: CancelToken,
}

impl ArmedFault {
    /// Whether this fault wraps the target node's output stream (the
    /// kinds [`FaultyWriter`] delivers).
    pub fn is_stream_fault(&self) -> bool {
        matches!(
            self.kind,
            FaultKind::KillWorker | FaultKind::Truncate | FaultKind::Corrupt | FaultKind::Stall
        )
    }

    /// The `PASH_FAULT` spec the process backend sets on the armed
    /// child: `kind:offset[:millis]`, parsed by the multicall (see
    /// [`parse_env_spec`]).
    pub fn env_spec(&self) -> Option<String> {
        match self.kind {
            FaultKind::KillWorker => Some(format!("die:{}", self.offset)),
            FaultKind::Truncate => Some(format!("trunc:{}", self.offset)),
            FaultKind::Corrupt => Some(format!("corrupt:{}", self.offset)),
            FaultKind::Stall => Some(format!("stall:{}:{}", self.offset, self.stall.as_millis())),
            _ => None,
        }
    }

    /// The writer-level mode for this fault, if it is a stream fault.
    pub fn writer_mode(&self) -> Option<FaultMode> {
        match self.kind {
            FaultKind::KillWorker => Some(FaultMode::Die { at: self.offset }),
            FaultKind::Truncate => Some(FaultMode::Truncate { at: self.offset }),
            FaultKind::Corrupt => Some(FaultMode::Corrupt { at: self.offset }),
            FaultKind::Stall => Some(FaultMode::Stall {
                at: self.offset,
                dur: self.stall,
                cancel: self.cancel.clone(),
            }),
            _ => None,
        }
    }
}

/// Parses a `PASH_FAULT` spec (`die:N`, `trunc:N`, `corrupt:N`,
/// `stall:N:MS`) into a writer mode. Unknown or malformed specs are
/// ignored (`None`) — the injection plane must never break a clean
/// run.
pub fn parse_env_spec(spec: &str) -> Option<FaultMode> {
    let mut parts = spec.split(':');
    let kind = parts.next()?;
    let at: u64 = parts.next()?.parse().ok()?;
    match kind {
        "die" => Some(FaultMode::Die { at }),
        "trunc" => Some(FaultMode::Truncate { at }),
        "corrupt" => Some(FaultMode::Corrupt { at }),
        "stall" => {
            let ms: u64 = parts.next()?.parse().ok()?;
            Some(FaultMode::Stall {
                at,
                dur: Duration::from_millis(ms),
                cancel: CancelToken::new(),
            })
        }
        _ => None,
    }
}

/// What a [`FaultyWriter`] does at its trigger offset.
#[derive(Debug, Clone)]
pub enum FaultMode {
    /// Report an injected death (threads) / abort the process
    /// (multicall) once `at` bytes have passed.
    Die {
        /// Trigger offset in bytes.
        at: u64,
    },
    /// Swallow all bytes past `at`, claiming success.
    Truncate {
        /// Trigger offset in bytes.
        at: u64,
    },
    /// XOR every byte from `at` on with a fixed mask.
    Corrupt {
        /// Trigger offset in bytes.
        at: u64,
    },
    /// Sleep `dur` (cancellably) once `at` bytes have passed, then
    /// continue normally.
    Stall {
        /// Trigger offset in bytes.
        at: u64,
        /// How long the stall lasts.
        dur: Duration,
        /// Cancelled by the deadline watchdog.
        cancel: CancelToken,
    },
}

/// The XOR mask corruption applies.
const CORRUPT_MASK: u8 = 0xA5;

/// A writer that injects its fault mode at a byte offset, passing
/// everything else through.
pub struct FaultyWriter<W> {
    inner: W,
    mode: FaultMode,
    written: u64,
    stalled: bool,
    died: bool,
    /// `abort` on trigger instead of returning an error — the
    /// multicall (child-process) delivery of [`FaultMode::Die`].
    abort_on_die: bool,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, delivering errors in-process (the threaded
    /// backend).
    pub fn new(inner: W, mode: FaultMode) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            mode,
            written: 0,
            stalled: false,
            died: false,
            abort_on_die: false,
        }
    }

    /// Wraps `inner` for a child process: `Die` aborts the process
    /// (SIGABRT) instead of returning an error, modelling a worker
    /// crash the parent only sees as a wait status.
    pub fn new_abort(inner: W, mode: FaultMode) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            mode,
            written: 0,
            stalled: false,
            died: false,
            abort_on_die: true,
        }
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match &self.mode {
            FaultMode::Die { at } => {
                // The death is sticky and must NOT be `Interrupted`:
                // `write_all`/`io::copy` transparently retry that
                // kind, which would both spin forever and re-write
                // the pre-death prefix once per retry (unbounded
                // growth on Vec-backed edges).
                if self.died {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected worker death",
                    ));
                }
                if self.written + buf.len() as u64 > *at {
                    let room = (*at - self.written) as usize;
                    self.inner.write_all(&buf[..room])?;
                    self.written += room as u64;
                    let _ = self.inner.flush();
                    self.died = true;
                    if self.abort_on_die {
                        std::process::abort();
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected worker death",
                    ));
                }
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
            FaultMode::Truncate { at } => {
                if self.written >= *at {
                    // Swallow, claiming success: the silent-loss shape.
                    self.written += buf.len() as u64;
                    return Ok(buf.len());
                }
                let room = ((*at - self.written) as usize).min(buf.len());
                self.inner.write_all(&buf[..room])?;
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
            FaultMode::Corrupt { at } => {
                let mut data = buf.to_vec();
                for (i, b) in data.iter_mut().enumerate() {
                    if self.written + i as u64 >= *at {
                        *b ^= CORRUPT_MASK;
                    }
                }
                self.inner.write_all(&data)?;
                self.written += data.len() as u64;
                Ok(buf.len())
            }
            FaultMode::Stall { at, dur, cancel } => {
                if !self.stalled && self.written + buf.len() as u64 > *at {
                    self.stalled = true;
                    cancel.sleep(*dur);
                }
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};
    use pash_core::plan::PlanStep;

    fn region(src: &str, width: usize) -> RegionPlan {
        let compiled = compile(
            src,
            &PashConfig {
                width,
                ..Default::default()
            },
        )
        .expect("compile");
        compiled
            .plan
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Region(r) => Some(r.clone()),
                _ => None,
            })
            .expect("region")
    }

    #[test]
    fn arm_is_deterministic_and_budgeted() {
        let r = region("cat in.txt | tr A-Z a-z | grep x > out.txt", 4);
        let plan = FaultPlan::new(FaultKind::KillWorker, 42);
        let a = plan.arm(&r).expect("armed");
        // Budget 1: the second arm is a no-op.
        assert!(plan.arm(&r).is_none());
        let again = FaultPlan::new(FaultKind::KillWorker, 42)
            .arm(&r)
            .expect("armed");
        assert_eq!(a.node, again.node);
        assert_eq!(a.edge, again.edge);
        // Different seeds may pick different sites, but always an
        // Exec node.
        for seed in 0..16 {
            let a = FaultPlan::new(FaultKind::KillWorker, seed)
                .arm(&r)
                .expect("armed");
            let n = a.node.expect("node target");
            assert!(matches!(r.nodes[n].op, PlanOp::Exec { .. }));
        }
    }

    #[test]
    fn corrupt_targets_framed_edges_only() {
        // Segment-split plans have no framed edges: nothing to arm.
        let r = region("cat in.txt | tr A-Z a-z | grep x > out.txt", 4);
        assert!(FaultPlan::new(FaultKind::Corrupt, 1).arm(&r).is_none());
        // Round-robin plans do.
        let compiled = compile(
            "cat in.txt | tr A-Z a-z | grep x > out.txt",
            &PashConfig::round_robin(4),
        )
        .expect("compile");
        let rr = compiled
            .plan
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Region(r) => Some(r.clone()),
                _ => None,
            })
            .expect("region");
        let a = FaultPlan::new(FaultKind::Corrupt, 1)
            .arm(&rr)
            .expect("armed");
        let n = a.node.expect("producer node");
        assert!(matches!(rr.nodes[n].op, PlanOp::Exec { framed: true, .. }));
        // Default corrupt offset lands inside the 4-byte frame magic.
        assert!(a.offset < 4, "offset {} not in the magic", a.offset);
    }

    #[test]
    fn remote_kinds_arm_only_remotely() {
        let r = region("cat in.txt | tr A-Z a-z | grep x > out.txt", 4);
        for kind in [
            FaultKind::ConnDrop,
            FaultKind::SlowWorker,
            FaultKind::TornFrame,
        ] {
            // No eligible site on the local backends.
            assert!(FaultPlan::new(kind, 3).arm(&r).is_none());
            let a = FaultPlan::new(kind, 3).arm_remote(&r).expect("armed");
            assert_eq!(a.kind, kind);
            assert!(a.node.is_some(), "connection fault attributes a node");
        }
        // The torn-frame default offset lands mid-frame-header.
        let a = FaultPlan::new(FaultKind::TornFrame, 5)
            .arm_remote(&r)
            .expect("armed");
        assert!((2..16).contains(&a.offset), "offset {}", a.offset);
        // Local kinds pass through arm(), sharing the budget.
        let p = FaultPlan::new(FaultKind::KillWorker, 7);
        assert!(p.arm_remote(&r).is_some());
        assert!(p.arm_remote(&r).is_none());
        // Name round-trip covers the new kinds.
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn faulty_writer_truncates_and_corrupts() {
        let mut buf = Vec::new();
        {
            let mut w = FaultyWriter::new(&mut buf, FaultMode::Truncate { at: 4 });
            assert_eq!(w.write(b"abcdefgh").expect("write"), 8);
            assert_eq!(w.write(b"ij").expect("write"), 2);
        }
        assert_eq!(buf, b"abcd");

        let mut buf = Vec::new();
        {
            let mut w = FaultyWriter::new(&mut buf, FaultMode::Corrupt { at: 2 });
            w.write_all(b"abcd").expect("write");
        }
        assert_eq!(&buf[..2], b"ab");
        assert_eq!(buf[2], b'c' ^ CORRUPT_MASK);
        assert_eq!(buf[3], b'd' ^ CORRUPT_MASK);
    }

    #[test]
    fn faulty_writer_dies_at_offset() {
        let mut buf = Vec::new();
        let mut w = FaultyWriter::new(&mut buf, FaultMode::Die { at: 3 });
        let err = w.write(b"abcdef").expect_err("must die");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        // A retrying caller (`write_all` semantics) sees the sticky
        // death, and the prefix is NOT re-written.
        let err = w.write(b"abcdef").expect_err("stays dead");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        drop(w);
        assert_eq!(buf, b"abc");
    }

    #[test]
    fn env_spec_roundtrips() {
        // Round-robin so framed edges exist for the Truncate arm.
        let compiled = compile(
            "cat in.txt | tr A-Z a-z > out.txt",
            &PashConfig::round_robin(2),
        )
        .expect("compile");
        let r = compiled
            .plan
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Region(r) => Some(r.clone()),
                _ => None,
            })
            .expect("region");
        for kind in [FaultKind::KillWorker, FaultKind::Truncate, FaultKind::Stall] {
            let a = FaultPlan::new(kind, 9).arm(&r).expect("armed");
            let spec = a.env_spec().expect("spec");
            assert!(parse_env_spec(&spec).is_some(), "{spec}");
        }
        assert!(parse_env_spec("nonsense").is_none());
        assert!(parse_env_spec("die:notanumber").is_none());
    }

    #[test]
    fn classification_follows_error_kind() {
        assert!(
            ExecError::classify("edge", io::Error::new(io::ErrorKind::InvalidData, "x"))
                .is_transient()
        );
        assert!(
            !ExecError::classify("edge", io::Error::new(io::ErrorKind::NotFound, "x"))
                .is_transient()
        );
        let e = ExecError::transient("spawn", io::Error::new(io::ErrorKind::Other, "boom"))
            .at_node(3)
            .at_edge(7);
        let s = e.to_string();
        assert!(s.contains("node 3") && s.contains("edge 7"), "{s}");
    }

    #[test]
    fn cancel_token_cuts_stall_short() {
        let t = CancelToken::new();
        t.cancel();
        let start = std::time::Instant::now();
        t.sleep(Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
