//! The `split` runtime primitives (§5.2, "Splitting Challenges").
//!
//! Three implementations:
//! * [`split_general`] — for inputs of unknown size: streams with a
//!   **bounded look-ahead**. While the input fits in the look-ahead
//!   window the split is exact (contiguous line ranges of near-equal
//!   counts, as the paper describes); beyond it, each output receives
//!   a line-aligned block sized adaptively from the observed line
//!   density and the final output streams the remainder, so memory
//!   stays constant at any input size;
//! * [`split_round_robin`] — the order-aware `r_split`: fixed-size
//!   line-aligned blocks dealt to the outputs in rotation, optionally
//!   stamped with sequence tags ([`crate::frame`]) so a downstream
//!   reorder aggregator can restore input order. No pre-pass, and
//!   balanced regardless of line-length skew;
//! * the input-aware variant for known sizes is `fileseg` (byte-range
//!   segments, no process needed) — see [`crate::fileseg`].
//!
//! For `split_general`, contiguity is essential: the concatenation of
//! the outputs must be exactly the input, or the stateless law does
//! not apply. For `split_round_robin`, the *tag-ordered* concatenation
//! of the blocks is the input — order is data, carried by the frames.

use crate::frame::write_frame;
use std::io::{self, BufRead, Write};

/// Default look-ahead window: inputs up to this size split exactly;
/// larger inputs stream through in blocks of up to this size.
pub const DEFAULT_LOOKAHEAD: usize = 4 * 1024 * 1024;

/// Smallest adaptive block: short-line inputs converge here instead of
/// shipping the whole look-ahead window as one block.
pub const MIN_ADAPTIVE_BLOCK: usize = 16 * 1024;

/// The adaptive sizing targets this many lines per block.
pub const TARGET_LINES_PER_BLOCK: u64 = 2048;

/// Picks a block size from the line density observed so far: aim at
/// [`TARGET_LINES_PER_BLOCK`] lines of the average observed length,
/// clamped to `[MIN_ADAPTIVE_BLOCK, max_block]` (and never above
/// `max_block`, which callers set to their look-ahead bound so
/// buffering stays bounded). With no observations yet, start small.
pub fn adaptive_block_size(bytes_seen: u64, lines_seen: u64, max_block: usize) -> usize {
    let max_block = max_block.max(1);
    if lines_seen == 0 {
        return MIN_ADAPTIVE_BLOCK.min(max_block);
    }
    let avg_line = (bytes_seen / lines_seen).max(1);
    let want = avg_line.saturating_mul(TARGET_LINES_PER_BLOCK);
    let want = usize::try_from(want).unwrap_or(usize::MAX);
    want.max(MIN_ADAPTIVE_BLOCK).min(max_block)
}

/// Splits the input into `outputs.len()` contiguous line-aligned
/// chunks, writing them in order, under the default look-ahead.
pub fn split_general(
    input: &mut dyn BufRead,
    outputs: &mut [Box<dyn Write + Send>],
) -> io::Result<()> {
    split_general_bounded(input, outputs, DEFAULT_LOOKAHEAD)
}

/// [`split_general`] with an explicit look-ahead window.
///
/// Invariants regardless of input size vs. window:
/// * the concatenation of all outputs is exactly the input (with a
///   final missing newline restored, as the line-oriented contract
///   requires);
/// * every output is one contiguous line-aligned range;
/// * buffered bytes never exceed the window plus one line.
pub fn split_general_bounded(
    input: &mut dyn BufRead,
    outputs: &mut [Box<dyn Write + Send>],
    lookahead: usize,
) -> io::Result<()> {
    let lookahead = lookahead.max(1);
    if outputs.is_empty() {
        // Degenerate zero-output call: consume and discard, matching
        // the fully-buffered path's silent drop.
        loop {
            let chunk = input.fill_buf()?;
            if chunk.is_empty() {
                return Ok(());
            }
            let n = chunk.len();
            input.consume(n);
        }
    }
    let mut buf: Vec<u8> = Vec::new();
    let eof = fill(input, &mut buf, lookahead + 1)?;
    if eof {
        // The whole input fits: exact near-equal line counts.
        return scatter_exact(buf, outputs);
    }
    // Streaming path: the per-output block size adapts to the line
    // density observed in the first window (short lines ⇒ smaller
    // blocks, long lines ⇒ up to the full window), bounded by the
    // look-ahead so buffering stays constant.
    let block = adaptive_block_size(buf.len() as u64, count_newlines(&buf), lookahead);
    let k = outputs.len();
    for i in 0..k.saturating_sub(1) {
        let eof = fill(input, &mut buf, block)?;
        if eof {
            // The tail arrived mid-stream: split what remains exactly
            // across the outputs not yet served.
            return scatter_exact(buf, &mut outputs[i..]);
        }
        // Cut at the last newline inside the block; a single line
        // longer than the block is kept whole (extend to its end).
        let cut = match buf[..block.min(buf.len())]
            .iter()
            .rposition(|&b| b == b'\n')
        {
            Some(p) => p + 1,
            None => match read_through_newline(input, &mut buf)? {
                Some(p) => p + 1,
                // EOF before any newline: everything left is one
                // final (unterminated) line.
                None => {
                    return scatter_exact(buf, &mut outputs[i..]);
                }
            },
        };
        write_chunk(outputs[i].as_mut(), &buf[..cut])?;
        buf.drain(..cut);
    }
    // Last output: stream the remainder through without buffering.
    let last = outputs.last_mut().expect("outputs non-empty").as_mut();
    let mut ends_with_nl = buf.last() == Some(&b'\n');
    let mut wrote_any = !buf.is_empty();
    write_chunk(last, &buf)?;
    drop(buf);
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            break;
        }
        let n = chunk.len();
        ends_with_nl = chunk[n - 1] == b'\n';
        wrote_any = true;
        write_chunk(last, chunk)?;
        input.consume(n);
    }
    if wrote_any && !ends_with_nl {
        write_chunk(last, b"\n")?;
    }
    Ok(())
}

/// Splits the input into line-aligned blocks dealt round-robin across
/// the outputs (`r_split`), under the default block-size bound.
///
/// With `framed`, each block is stamped with its sequence tag
/// ([`crate::frame`]); downstream `pash-agg-reorder` restores input
/// order. Without, bare blocks flow to commutative consumers.
pub fn split_round_robin(
    input: &mut dyn BufRead,
    outputs: &mut [Box<dyn Write + Send>],
    framed: bool,
) -> io::Result<()> {
    split_round_robin_bounded(input, outputs, framed, DEFAULT_LOOKAHEAD)
}

/// [`split_round_robin`] with an explicit block-size bound.
///
/// Invariants:
/// * the tag-ordered (for raw: emission-ordered) concatenation of all
///   blocks is exactly the input, with a final missing newline
///   restored;
/// * every block is line-aligned, and a single line longer than the
///   block bound is kept whole;
/// * block sizes adapt to the observed line density
///   ([`adaptive_block_size`]), so buffering never exceeds the bound
///   plus one line and load balances regardless of line-length skew.
pub fn split_round_robin_bounded(
    input: &mut dyn BufRead,
    outputs: &mut [Box<dyn Write + Send>],
    framed: bool,
    max_block: usize,
) -> io::Result<()> {
    let max_block = max_block.max(1);
    if outputs.is_empty() {
        loop {
            let chunk = input.fill_buf()?;
            if chunk.is_empty() {
                return Ok(());
            }
            let n = chunk.len();
            input.consume(n);
        }
    }
    let k = outputs.len();
    let mut buf: Vec<u8> = Vec::new();
    let mut bytes_seen = 0u64;
    let mut lines_seen = 0u64;
    let mut tag = 0u64;
    loop {
        let block = adaptive_block_size(bytes_seen, lines_seen, max_block);
        let eof = fill(input, &mut buf, block)?;
        if buf.is_empty() {
            return Ok(());
        }
        let cut = if eof {
            // Everything that remains is the final block; the
            // line-oriented contract restores a missing newline.
            if buf.last() != Some(&b'\n') {
                buf.push(b'\n');
            }
            buf.len()
        } else {
            match buf[..block.min(buf.len())]
                .iter()
                .rposition(|&b| b == b'\n')
            {
                Some(p) => p + 1,
                // A line longer than the block: keep it whole.
                None => match read_through_newline(input, &mut buf)? {
                    Some(p) => p + 1,
                    None => {
                        if buf.last() != Some(&b'\n') {
                            buf.push(b'\n');
                        }
                        buf.len()
                    }
                },
            }
        };
        bytes_seen += cut as u64;
        lines_seen += count_newlines(&buf[..cut]);
        let out = outputs[(tag as usize) % k].as_mut();
        if framed {
            write_frame_abandoning(out, tag, &buf[..cut])?;
        } else {
            write_chunk(out, &buf[..cut])?;
        }
        tag += 1;
        buf.drain(..cut);
        if eof && buf.is_empty() {
            return Ok(());
        }
    }
}

/// Number of newlines in a chunk.
fn count_newlines(data: &[u8]) -> u64 {
    data.iter().filter(|&&b| b == b'\n').count() as u64
}

/// [`write_frame`] with the same broken-pipe tolerance as
/// [`write_chunk`]: an early-exiting consumer abandons its blocks.
fn write_frame_abandoning(
    out: &mut (dyn Write + Send),
    tag: u64,
    payload: &[u8],
) -> io::Result<()> {
    match write_frame(out, tag, payload) {
        Ok(()) => Ok(()),
        Err(err) if err.kind() == io::ErrorKind::BrokenPipe => Ok(()),
        Err(err) => Err(err),
    }
}

/// Reads until `buf` holds at least `target` bytes or EOF; returns
/// whether EOF was reached.
fn fill(input: &mut dyn BufRead, buf: &mut Vec<u8>, target: usize) -> io::Result<bool> {
    while buf.len() < target {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(true);
        }
        let n = chunk.len();
        buf.extend_from_slice(chunk);
        input.consume(n);
    }
    Ok(false)
}

/// Extends `buf` until it contains a newline at or past its current
/// end-of-window, returning the newline's position (`None` at EOF).
fn read_through_newline(input: &mut dyn BufRead, buf: &mut Vec<u8>) -> io::Result<Option<usize>> {
    let mut from = buf.len();
    loop {
        if let Some(p) = buf[from..].iter().position(|&b| b == b'\n') {
            return Ok(Some(from + p));
        }
        from = buf.len();
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(None);
        }
        let n = chunk.len();
        buf.extend_from_slice(chunk);
        input.consume(n);
    }
}

/// A consumer that exited early must not stall the remaining chunks;
/// treat its broken pipe as "chunk abandoned".
fn write_chunk(out: &mut (dyn Write + Send), data: &[u8]) -> io::Result<()> {
    match out.write_all(data) {
        Ok(()) => Ok(()),
        Err(err) if err.kind() == io::ErrorKind::BrokenPipe => Ok(()),
        Err(err) => Err(err),
    }
}

/// Scatters fully-buffered data as contiguous chunks of near-equal
/// line counts (the exact split of the paper).
fn scatter_exact(mut data: Vec<u8>, outputs: &mut [Box<dyn Write + Send>]) -> io::Result<()> {
    // The line-oriented contract: a final unterminated line is still a
    // line, delivered with a newline (as the per-line path always did).
    if data.last().is_some_and(|&b| b != b'\n') {
        data.push(b'\n');
    }
    // Line-start index; a trailing sentinel marks end-of-data so line
    // `i` spans `starts[i]..starts[i + 1]`.
    let mut starts: Vec<usize> = Vec::with_capacity(data.len() / 32 + 2);
    if !data.is_empty() {
        starts.push(0);
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' && i + 1 < data.len() {
                starts.push(i + 1);
            }
        }
    }
    starts.push(data.len());

    let k = outputs.len().max(1);
    let n = starts.len() - 1;
    let base = n / k;
    let extra = n % k;
    let mut idx = 0usize;
    for (i, out) in outputs.iter_mut().enumerate() {
        let take = base + usize::from(i < extra);
        let (s, e) = (starts[idx], starts[idx + take]);
        if e > s {
            write_chunk(out.as_mut(), &data[s..e])?;
        }
        idx += take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn split_with(input: &str, k: usize, lookahead: Option<usize>) -> Vec<Vec<u8>> {
        let sinks: Vec<std::sync::Arc<std::sync::Mutex<Vec<u8>>>> =
            (0..k).map(|_| Default::default()).collect();
        struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut outs: Vec<Box<dyn Write + Send>> = sinks
            .iter()
            .map(|s| Box::new(SharedSink(s.clone())) as Box<dyn Write + Send>)
            .collect();
        let mut r = io::BufReader::new(io::Cursor::new(input.as_bytes().to_vec()));
        match lookahead {
            None => split_general(&mut r, &mut outs).expect("split"),
            Some(la) => split_general_bounded(&mut r, &mut outs, la).expect("split"),
        }
        drop(outs);
        sinks
            .iter()
            .map(|s| s.lock().expect("sink lock").clone())
            .collect()
    }

    fn split_into(input: &str, k: usize) -> Vec<Vec<u8>> {
        split_with(input, k, None)
    }

    #[test]
    fn splits_evenly() {
        let parts = split_into("1\n2\n3\n4\n5\n6\n", 3);
        assert_eq!(parts[0], b"1\n2\n");
        assert_eq!(parts[1], b"3\n4\n");
        assert_eq!(parts[2], b"5\n6\n");
    }

    #[test]
    fn uneven_division_front_loads() {
        let parts = split_into("1\n2\n3\n4\n5\n", 2);
        assert_eq!(parts[0], b"1\n2\n3\n");
        assert_eq!(parts[1], b"4\n5\n");
    }

    #[test]
    fn fewer_lines_than_outputs() {
        let parts = split_into("only\n", 4);
        assert_eq!(parts[0], b"only\n");
        assert!(parts[1..].iter().all(|p| p.is_empty()));
    }

    #[test]
    fn empty_input() {
        let parts = split_into("", 3);
        assert!(parts.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn zero_outputs_drains_input_without_panicking() {
        // Degenerate call, but both the buffered and the streaming
        // path must drain and return Ok rather than panic.
        let big: String = (0..200).map(|i| format!("line{i}\n")).collect();
        for lookahead in [None, Some(64)] {
            let parts = split_with(&big, 0, lookahead);
            assert!(parts.is_empty());
        }
    }

    #[test]
    fn streaming_path_preserves_concatenation() {
        // 100 lines of ~6 bytes against a 64-byte window: forces the
        // block-per-output streaming path.
        let input: String = (0..100).map(|i| format!("l{i:03}\n")).collect();
        let parts = split_with(&input, 4, Some(64));
        assert_eq!(parts.concat(), input.as_bytes());
        // Every output is line-aligned.
        for p in &parts {
            assert!(p.is_empty() || p.last() == Some(&b'\n'));
        }
        // The early outputs carry roughly a window's worth, not a
        // quarter of the input.
        assert!(parts[0].len() <= 64 + 6);
        assert!(!parts[3].is_empty());
    }

    #[test]
    fn streaming_keeps_long_lines_whole() {
        let long = "x".repeat(500);
        let input = format!("{long}\na\nb\nc\n");
        let parts = split_with(&input, 3, Some(16));
        assert_eq!(parts.concat(), input.as_bytes());
        // The 500-byte line exceeded the window but was not torn.
        assert!(parts[0].starts_with(long.as_bytes()));
        assert_eq!(&parts[0][long.len()..long.len() + 1], b"\n");
    }

    #[test]
    fn streaming_appends_missing_final_newline() {
        let input: String = (0..50).map(|i| format!("{i}\n")).collect::<String>() + "tail";
        let parts = split_with(&input, 2, Some(32));
        let mut want = input.into_bytes();
        want.push(b'\n');
        assert_eq!(parts.concat(), want);
    }

    #[test]
    fn eof_mid_stream_rebalances_remaining_outputs() {
        // Window 32, 3 outputs, ~90 bytes: output 0 gets a block, the
        // remainder splits exactly across outputs 1 and 2.
        let input: String = (0..18).map(|i| format!("x{i:03}\n")).collect();
        let parts = split_with(&input, 3, Some(32));
        assert_eq!(parts.concat(), input.as_bytes());
        assert!(!parts[1].is_empty());
        assert!(!parts[2].is_empty());
    }

    fn rr_split_with(input: &str, k: usize, framed: bool, max_block: usize) -> Vec<Vec<u8>> {
        let sinks: Vec<std::sync::Arc<std::sync::Mutex<Vec<u8>>>> =
            (0..k).map(|_| Default::default()).collect();
        struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut outs: Vec<Box<dyn Write + Send>> = sinks
            .iter()
            .map(|s| Box::new(SharedSink(s.clone())) as Box<dyn Write + Send>)
            .collect();
        let mut r = io::BufReader::new(io::Cursor::new(input.as_bytes().to_vec()));
        split_round_robin_bounded(&mut r, &mut outs, framed, max_block).expect("r_split");
        drop(outs);
        sinks
            .iter()
            .map(|s| s.lock().expect("sink lock").clone())
            .collect()
    }

    /// Reads every frame off each part; returns (tag, payload) pairs.
    fn frames_of(parts: &[Vec<u8>]) -> Vec<(u64, Vec<u8>)> {
        let mut all = Vec::new();
        for p in parts {
            let mut r = crate::frame::FrameReader::new(io::Cursor::new(p.clone()));
            while let Some(f) = r.next_frame().expect("frame") {
                all.push(f);
            }
        }
        all
    }

    #[test]
    fn round_robin_framed_restores_input_in_tag_order() {
        let input: String = (0..100).map(|i| format!("l{i:03}\n")).collect();
        let parts = rr_split_with(&input, 3, true, 32);
        let mut frames = frames_of(&parts);
        frames.sort_by_key(|(t, _)| *t);
        // Tags are dense from zero and the ordered payloads are the
        // input, byte for byte.
        for (i, (t, _)) in frames.iter().enumerate() {
            assert_eq!(*t, i as u64);
        }
        let joined: Vec<u8> = frames.into_iter().flat_map(|(_, p)| p).collect();
        assert_eq!(joined, input.into_bytes());
    }

    #[test]
    fn round_robin_deals_tags_by_rotation() {
        let input: String = (0..60).map(|i| format!("l{i:03}\n")).collect();
        let parts = rr_split_with(&input, 4, true, 16);
        for (i, p) in parts.iter().enumerate() {
            let mut r = crate::frame::FrameReader::new(io::Cursor::new(p.clone()));
            let mut expect = i as u64;
            while let Some((tag, _)) = r.next_frame().expect("frame") {
                assert_eq!(tag, expect, "output {i} carries tags i, i+k, i+2k, …");
                expect += 4;
            }
        }
    }

    #[test]
    fn round_robin_raw_concatenates_by_rotation() {
        let input: String = (0..40).map(|i| format!("{i}\n")).collect();
        let parts = rr_split_with(&input, 3, false, 16);
        // Raw blocks carry no tags, so only multiset equality can be
        // checked structurally: every output is line-aligned and the
        // line sets union back to the input.
        let mut all: Vec<&[u8]> = Vec::new();
        for p in &parts {
            assert!(p.is_empty() || p.last() == Some(&b'\n'));
            all.extend(p.split_inclusive(|&b| b == b'\n'));
        }
        let mut want: Vec<&[u8]> = input.as_bytes().split_inclusive(|&b| b == b'\n').collect();
        all.sort_unstable();
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn round_robin_balances_skewed_line_lengths() {
        // Pathological for the segment splitter: line lengths grow so
        // the back half holds most of the bytes. Round-robin deals
        // fixed-size blocks, so the byte spread stays bounded by a
        // couple of blocks regardless of the skew.
        let input: String = (0..400)
            .map(|i| format!("{}\n", "x".repeat(1 + (i / 4) * 3)))
            .collect();
        let block = 4 * 1024;
        let parts = rr_split_with(&input, 4, false, block);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let max = *sizes.iter().max().expect("sizes");
        let min = *sizes.iter().min().expect("sizes");
        assert!(
            max - min <= 2 * block + 400,
            "skewed input must stay balanced: {sizes:?}"
        );
    }

    #[test]
    fn round_robin_empty_input_emits_no_frames() {
        let parts = rr_split_with("", 3, true, 64);
        assert!(parts.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn round_robin_appends_missing_final_newline() {
        let parts = rr_split_with("a\nb", 2, true, 1024);
        let mut frames = frames_of(&parts);
        frames.sort_by_key(|(t, _)| *t);
        let joined: Vec<u8> = frames.into_iter().flat_map(|(_, p)| p).collect();
        assert_eq!(joined, b"a\nb\n");
    }

    #[test]
    fn adaptive_block_grows_with_line_length() {
        // Short lines: the average-line estimate stays at the floor.
        let short = adaptive_block_size(6 * 2048, 2048, usize::MAX);
        assert_eq!(short, MIN_ADAPTIVE_BLOCK);
        // Long lines: the block scales to hold ~TARGET_LINES_PER_BLOCK
        // of them, so per-block dispatch overhead stays amortized.
        let long = adaptive_block_size(512 * 2048, 2048, usize::MAX);
        assert_eq!(long, 512 * 2048);
        assert!(long > short);
        // The bound always wins.
        assert_eq!(adaptive_block_size(512 * 2048, 2048, 64 * 1024), 64 * 1024);
        // No lines seen yet: floor, clamped.
        assert_eq!(adaptive_block_size(10, 0, usize::MAX), MIN_ADAPTIVE_BLOCK);
        assert_eq!(adaptive_block_size(10, 0, 64), 64);
    }

    #[test]
    fn adaptive_sizing_short_vs_long_line_corpora() {
        // Satellite regression: the same splitter call dispatches far
        // fewer, larger blocks on a long-line corpus than a naive
        // fixed tiny block would, while short-line corpora stay at
        // the floor. Block count ≈ bytes / chosen-block-size.
        let short_input: String = (0..4000).map(|i| format!("s{i}\n")).collect();
        let short_parts = rr_split_with(&short_input, 2, true, 1 << 20);
        let short_frames = frames_of(&short_parts).len();
        // ~24 KiB of short lines at a 16 KiB floor → a small handful
        // of blocks, not one per line.
        assert!(short_frames <= 4, "{short_frames} frames");

        let long_line = "y".repeat(8 * 1024);
        let long_input: String = (0..64).map(|_| format!("{long_line}\n")).collect();
        let long_parts = rr_split_with(&long_input, 2, true, 1 << 20);
        for (_, payload) in frames_of(&long_parts) {
            // Every 8 KiB line stays whole even though it dwarfs the
            // 16 KiB floor-sized early blocks.
            assert_eq!(payload.len() % (8 * 1024 + 1), 0);
        }
    }

    proptest! {
        #[test]
        fn prop_round_robin_tag_order_identity(
            lines in proptest::collection::vec("[a-z]{0,12}", 0..80),
            k in 1usize..6,
            block in 1usize..96,
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let parts = rr_split_with(&input, k, true, block);
            let mut frames = frames_of(&parts);
            frames.sort_by_key(|(t, _)| *t);
            let joined: Vec<u8> = frames.into_iter().flat_map(|(_, p)| p).collect();
            prop_assert_eq!(joined, input.into_bytes());
        }

        #[test]
        fn prop_concatenation_identity(
            lines in proptest::collection::vec("[a-z ]{0,10}", 0..60),
            k in 1usize..8,
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let parts = split_into(&input, k);
            let joined: Vec<u8> = parts.concat();
            prop_assert_eq!(joined, input.into_bytes());
        }

        #[test]
        fn prop_balanced_within_one_line(
            n in 0usize..100,
            k in 1usize..8,
        ) {
            let input: String = (0..n).map(|i| format!("{i}\n")).collect();
            let parts = split_into(&input, k);
            let counts: Vec<usize> = parts
                .iter()
                .map(|p| p.iter().filter(|&&b| b == b'\n').count())
                .collect();
            let max = counts.iter().max().copied().unwrap_or(0);
            let min = counts.iter().min().copied().unwrap_or(0);
            prop_assert!(max - min <= 1);
        }

        #[test]
        fn prop_bounded_lookahead_concatenation_identity(
            lines in proptest::collection::vec("[a-z]{0,12}", 0..80),
            k in 1usize..6,
            lookahead in 1usize..96,
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let parts = split_with(&input, k, Some(lookahead));
            let joined: Vec<u8> = parts.concat();
            prop_assert_eq!(joined, input.into_bytes());
        }
    }
}
