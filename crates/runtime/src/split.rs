//! The `split` runtime primitive (§5.2, "Splitting Challenges").
//!
//! Two implementations:
//! * [`split_general`] — for inputs of unknown size: consumes the
//!   complete input first, counts its lines, then scatters contiguous
//!   line ranges evenly across the outputs;
//! * the input-aware variant for known sizes is `fileseg` (byte-range
//!   segments, no process needed) — see [`crate::fileseg`].
//!
//! Contiguity is essential: the concatenation of the outputs must be
//! exactly the input, or the stateless law does not apply.

use std::io::{self, BufRead, Write};

/// Splits the complete input into `outputs.len()` contiguous chunks of
/// near-equal line counts, writing them in order.
///
/// The input is streamed into one flat byte buffer while a line-start
/// index is built alongside — no per-line allocations — and each
/// output chunk leaves as a single `write_all` of a contiguous slice.
pub fn split_general(
    input: &mut dyn BufRead,
    outputs: &mut [Box<dyn Write + Send>],
) -> io::Result<()> {
    // Drain the input buffer-by-buffer into flat storage.
    let mut data: Vec<u8> = Vec::new();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            break;
        }
        let n = chunk.len();
        data.extend_from_slice(chunk);
        input.consume(n);
    }
    // The line-oriented contract: a final unterminated line is still a
    // line, delivered with a newline (as the per-line path always did).
    if data.last().is_some_and(|&b| b != b'\n') {
        data.push(b'\n');
    }
    // Line-start index; a trailing sentinel marks end-of-data so line
    // `i` spans `starts[i]..starts[i + 1]`.
    let mut starts: Vec<usize> = Vec::with_capacity(data.len() / 32 + 2);
    if !data.is_empty() {
        starts.push(0);
        for (i, &b) in data.iter().enumerate() {
            if b == b'\n' && i + 1 < data.len() {
                starts.push(i + 1);
            }
        }
    }
    starts.push(data.len());

    let k = outputs.len().max(1);
    let n = starts.len() - 1;
    let base = n / k;
    let extra = n % k;
    let mut idx = 0usize;
    for (i, out) in outputs.iter_mut().enumerate() {
        let take = base + usize::from(i < extra);
        let (s, e) = (starts[idx], starts[idx + take]);
        if e > s {
            // A consumer that exited early must not stall the
            // remaining chunks; treat its broken pipe as "chunk
            // abandoned".
            match out.write_all(&data[s..e]) {
                Ok(()) => {}
                Err(err) if err.kind() == io::ErrorKind::BrokenPipe => {}
                Err(err) => return Err(err),
            }
        }
        idx += take;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn split_into(input: &str, k: usize) -> Vec<Vec<u8>> {
        let sinks: Vec<std::sync::Arc<std::sync::Mutex<Vec<u8>>>> =
            (0..k).map(|_| Default::default()).collect();
        struct SharedSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut outs: Vec<Box<dyn Write + Send>> = sinks
            .iter()
            .map(|s| Box::new(SharedSink(s.clone())) as Box<dyn Write + Send>)
            .collect();
        let mut r = io::BufReader::new(io::Cursor::new(input.as_bytes().to_vec()));
        split_general(&mut r, &mut outs).expect("split");
        drop(outs);
        sinks
            .iter()
            .map(|s| s.lock().expect("sink lock").clone())
            .collect()
    }

    #[test]
    fn splits_evenly() {
        let parts = split_into("1\n2\n3\n4\n5\n6\n", 3);
        assert_eq!(parts[0], b"1\n2\n");
        assert_eq!(parts[1], b"3\n4\n");
        assert_eq!(parts[2], b"5\n6\n");
    }

    #[test]
    fn uneven_division_front_loads() {
        let parts = split_into("1\n2\n3\n4\n5\n", 2);
        assert_eq!(parts[0], b"1\n2\n3\n");
        assert_eq!(parts[1], b"4\n5\n");
    }

    #[test]
    fn fewer_lines_than_outputs() {
        let parts = split_into("only\n", 4);
        assert_eq!(parts[0], b"only\n");
        assert!(parts[1..].iter().all(|p| p.is_empty()));
    }

    #[test]
    fn empty_input() {
        let parts = split_into("", 3);
        assert!(parts.iter().all(|p| p.is_empty()));
    }

    proptest! {
        #[test]
        fn prop_concatenation_identity(
            lines in proptest::collection::vec("[a-z ]{0,10}", 0..60),
            k in 1usize..8,
        ) {
            let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
            let parts = split_into(&input, k);
            let joined: Vec<u8> = parts.concat();
            prop_assert_eq!(joined, input.into_bytes());
        }

        #[test]
        fn prop_balanced_within_one_line(
            n in 0usize..100,
            k in 1usize..8,
        ) {
            let input: String = (0..n).map(|i| format!("{i}\n")).collect();
            let parts = split_into(&input, k);
            let counts: Vec<usize> = parts
                .iter()
                .map(|p| p.iter().filter(|&&b| b == b'\n').count())
                .collect();
            let max = counts.iter().max().copied().unwrap_or(0);
            let min = counts.iter().min().copied().unwrap_or(0);
            prop_assert!(max - min <= 1);
        }
    }
}
