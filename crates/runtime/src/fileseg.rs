//! Line-aligned file segmentation (the input-aware split of §5.2).
//!
//! Segment `i` of `k` covers the lines whose first byte falls in
//! `[⌊i·len/k⌋, ⌊(i+1)·len/k⌋)` after alignment to line boundaries.
//! The concatenation of all segments is exactly the file — the
//! invariant the stateless law depends on (property-tested below).

use std::io;
use std::sync::Arc;

use pash_coreutils::fs::Fs;

/// Computes the byte bounds of segment `part` of `of` over `data`.
pub fn segment_bounds(data: &[u8], part: usize, of: usize) -> (usize, usize) {
    let len = data.len();
    let of = of.max(1);
    let part = part.min(of - 1);
    (
        cut_point(data, part, of, len),
        cut_point(data, part + 1, of, len),
    )
}

/// The aligned cut point before segment `i`: the smallest index `>=
/// i*len/of` that starts a line.
fn cut_point(data: &[u8], i: usize, of: usize, len: usize) -> usize {
    if i == 0 {
        return 0;
    }
    if i >= of {
        return len;
    }
    let raw = len * i / of;
    let mut p = raw;
    while p < len && data[p.saturating_sub(1)] != b'\n' {
        p += 1;
    }
    p.min(len)
}

/// Bytes fetched per probe while hunting for the newline that aligns
/// a cut point. One probe almost always suffices: lines are far
/// shorter than this.
const PROBE_BYTES: u64 = 4096;

/// The aligned cut point before segment `i`, computed against the
/// filesystem without reading the whole file: probes
/// [`Fs::read_range`] windows forward from the raw offset until the
/// newline rule of [`cut_point`] resolves. Byte-for-byte equivalent
/// to `cut_point` over the full contents (property-tested below).
fn aligned_cut(fs: &Arc<dyn Fs>, path: &str, len: u64, i: usize, of: usize) -> io::Result<u64> {
    if i == 0 {
        return Ok(0);
    }
    if i >= of {
        return Ok(len);
    }
    let raw = (len as u128 * i as u128 / of as u128) as u64;
    // Walk p forward exactly like cut_point: stop at the first p with
    // data[p.saturating_sub(1)] == '\n' (or at len). Bytes are pulled
    // through a probe window, so the cost is the distance to the next
    // newline, not the file size.
    let mut p = raw;
    let mut win: Vec<u8> = Vec::new();
    let mut win_start = 0u64;
    while p < len {
        let idx = p.saturating_sub(1);
        if idx < win_start || idx >= win_start + win.len() as u64 {
            win_start = idx;
            win = fs.read_range(path, win_start, (win_start + PROBE_BYTES).min(len))?;
            if win.is_empty() {
                return Ok(len.min(p));
            }
        }
        if win[(idx - win_start) as usize] == b'\n' {
            return Ok(p);
        }
        p += 1;
    }
    Ok(len)
}

/// Reads segment `part` of `of` of a file.
///
/// Only the bytes near the two cut points plus the segment's own
/// O(len/of) slice are read — a k-wide stage costs one file's worth
/// of I/O in total, not k files' worth.
pub fn read_segment(fs: &Arc<dyn Fs>, path: &str, part: usize, of: usize) -> io::Result<Vec<u8>> {
    let len = fs.size(path)?;
    let of = of.max(1);
    let part = part.min(of - 1);
    let start = aligned_cut(fs, path, len, part, of)?;
    let end = aligned_cut(fs, path, len, part + 1, of)?;
    fs.read_range(path, start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_coreutils::fs::MemFs;
    use proptest::prelude::*;

    fn segs(data: &[u8], k: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                let (s, e) = segment_bounds(data, i, k);
                data[s..e].to_vec()
            })
            .collect()
    }

    #[test]
    fn concatenation_identity() {
        let data = b"one\ntwo\nthree\nfour\nfive\n";
        for k in 1..=6 {
            let joined: Vec<u8> = segs(data, k).concat();
            assert_eq!(joined, data, "k = {k}");
        }
    }

    #[test]
    fn segments_end_on_line_boundaries() {
        let data = b"aaaa\nbb\ncccccc\ndddd\n";
        for k in 2..=4 {
            for (i, seg) in segs(data, k).iter().enumerate() {
                if !seg.is_empty() && i + 1 < k {
                    assert_eq!(*seg.last().expect("non-empty"), b'\n');
                }
            }
        }
    }

    #[test]
    fn empty_file() {
        assert_eq!(segs(b"", 4).concat(), b"");
    }

    #[test]
    fn single_long_line_goes_to_first_segment() {
        let data = b"one-single-very-long-line-without-newline";
        let parts = segs(data, 4);
        assert_eq!(parts[0], data.to_vec());
        assert!(parts[1..].iter().all(|p| p.is_empty()));
    }

    #[test]
    fn read_segment_via_fs() {
        let fs = MemFs::new();
        fs.add("f", b"a\nb\nc\nd\n".to_vec());
        let fs: Arc<dyn Fs> = Arc::new(fs);
        let all: Vec<u8> = (0..3)
            .map(|i| read_segment(&fs, "f", i, 3).expect("segment"))
            .collect::<Vec<_>>()
            .concat();
        assert_eq!(all, b"a\nb\nc\nd\n");
    }

    proptest! {
        #[test]
        fn prop_concatenation_identity(
            lines in proptest::collection::vec("[a-z]{0,12}", 0..50),
            k in 1usize..10,
        ) {
            let data: Vec<u8> = lines
                .iter()
                .flat_map(|l| {
                    let mut v = l.as_bytes().to_vec();
                    v.push(b'\n');
                    v
                })
                .collect();
            let joined: Vec<u8> = segs(&data, k).concat();
            prop_assert_eq!(joined, data);
        }

        // The seek-based reader agrees with the in-memory bounds for
        // every part, and its segments concatenate to exactly the
        // file — including inputs with long lines and no trailing
        // newline.
        #[test]
        fn prop_read_segment_matches_in_memory(
            lines in proptest::collection::vec("[a-z]{0,40}", 0..30),
            k in 1usize..10,
            trailing_newline in 0usize..2,
        ) {
            let mut data: Vec<u8> = lines
                .iter()
                .flat_map(|l| {
                    let mut v = l.as_bytes().to_vec();
                    v.push(b'\n');
                    v
                })
                .collect();
            if trailing_newline == 0 {
                data.pop();
            }
            let mem = MemFs::new();
            mem.add("f", data.clone());
            let fs: Arc<dyn Fs> = Arc::new(mem);
            let mut joined = Vec::new();
            for (part, expected) in segs(&data, k).into_iter().enumerate() {
                let got = read_segment(&fs, "f", part, k).expect("segment");
                prop_assert_eq!(&got, &expected, "part {}/{}", part, k);
                joined.extend_from_slice(&got);
            }
            prop_assert_eq!(joined, data);
        }

        #[test]
        fn prop_segments_are_monotone(
            lines in proptest::collection::vec("[a-z]{0,8}", 1..40),
            k in 1usize..8,
        ) {
            let data: Vec<u8> = lines
                .iter()
                .flat_map(|l| {
                    let mut v = l.as_bytes().to_vec();
                    v.push(b'\n');
                    v
                })
                .collect();
            let mut prev_end = 0;
            for i in 0..k {
                let (s, e) = segment_bounds(&data, i, k);
                prop_assert_eq!(s, prev_end);
                prop_assert!(e >= s);
                prev_end = e;
            }
            prop_assert_eq!(prev_end, data.len());
        }
    }
}
