//! Batched line scanning: the flat-buffer + line-index technique from
//! the splitter, adapted to streaming readers.
//!
//! Aggregators used to pull their inputs one `read_until` call per
//! line, paying a `BufRead` dispatch, a bounds-checked copy, and a
//! `Vec` manipulation per line. [`LineScanner`] instead refills a
//! flat buffer in large reads and hands out borrowed line slices,
//! so the per-line cost is one `memchr`-style scan.

use std::io::{self, Read};

/// Refill granularity (and initial buffer size).
const SCAN_CHUNK: usize = 64 * 1024;

/// A batched line reader over any byte stream.
///
/// Lines are yielded without their terminating newline; a final
/// unterminated line is still a line.
pub struct LineScanner<R> {
    src: R,
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// One past the last valid byte.
    end: usize,
    eof: bool,
}

impl<R: Read> LineScanner<R> {
    /// Wraps a reader.
    pub fn new(src: R) -> Self {
        LineScanner {
            src,
            buf: vec![0; SCAN_CHUNK],
            start: 0,
            end: 0,
            eof: false,
        }
    }

    /// The next line (newline stripped), or `None` at end of stream.
    ///
    /// The returned slice borrows the scanner's buffer and is valid
    /// until the next call.
    pub fn next_line(&mut self) -> io::Result<Option<&[u8]>> {
        loop {
            if let Some(pos) = self.buf[self.start..self.end]
                .iter()
                .position(|&b| b == b'\n')
            {
                let s = self.start;
                self.start += pos + 1;
                return Ok(Some(&self.buf[s..s + pos]));
            }
            if self.eof {
                if self.start < self.end {
                    let (s, e) = (self.start, self.end);
                    self.start = self.end;
                    return Ok(Some(&self.buf[s..e]));
                }
                return Ok(None);
            }
            // Compact the partial line to the front, then refill the
            // tail in one bulk read (growing for oversized lines).
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
            if self.end == self.buf.len() {
                self.buf.resize(self.buf.len() * 2, 0);
            }
            // Retry on EINTR like `read_until` did; a signal mid-read
            // must not abort the aggregation.
            let n = loop {
                match self.src.read(&mut self.buf[self.end..]) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            if n == 0 {
                self.eof = true;
            } else {
                self.end += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn lines_of(data: &[u8]) -> Vec<Vec<u8>> {
        let mut sc = LineScanner::new(Cursor::new(data.to_vec()));
        let mut out = Vec::new();
        while let Some(l) = sc.next_line().expect("scan") {
            out.push(l.to_vec());
        }
        out
    }

    #[test]
    fn splits_on_newlines() {
        assert_eq!(
            lines_of(b"a\nbb\nccc\n"),
            vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]
        );
    }

    #[test]
    fn final_unterminated_line_delivered() {
        assert_eq!(lines_of(b"a\nb"), vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(lines_of(b"").is_empty());
    }

    #[test]
    fn empty_lines_preserved() {
        assert_eq!(
            lines_of(b"\n\nx\n"),
            vec![Vec::new(), Vec::new(), b"x".to_vec()]
        );
    }

    #[test]
    fn lines_longer_than_the_buffer_grow_it() {
        let long = vec![b'q'; 3 * SCAN_CHUNK + 17];
        let mut data = long.clone();
        data.push(b'\n');
        data.extend_from_slice(b"tail\n");
        let got = lines_of(&data);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], long);
        assert_eq!(got[1], b"tail");
    }

    /// A reader that returns one byte per read call: the scanner must
    /// still assemble whole lines.
    struct Trickle(Vec<u8>, usize);
    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.1 >= self.0.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[self.1];
            self.1 += 1;
            Ok(1)
        }
    }

    #[test]
    fn trickled_input_assembles_lines() {
        let mut sc = LineScanner::new(Trickle(b"ab\ncd\n".to_vec(), 0));
        let mut out = Vec::new();
        while let Some(l) = sc.next_line().expect("scan") {
            out.push(l.to_vec());
        }
        assert_eq!(out, vec![b"ab".to_vec(), b"cd".to_vec()]);
    }
}
