//! Per-region execution profiles and the persistent profile store.
//!
//! The adaptive optimizer (`pash_core::optimize`) prices candidate
//! plan shapes through the simulator's rate model; this module is
//! where those rates stop being priors. Both backends cheaply record
//! per-node bytes-in / bytes-out and busy-time into a
//! [`RegionProfile`] (atomic counters, the
//! [`crate::supervise::SupervisorCounters`] pattern), keyed by
//! `(region fingerprint, node id)`. A [`ProfileStore`] decay-merges
//! repeated observations in memory and mirrors them to an on-disk
//! tier beside the plan cache (atomic rename writes,
//! corruption-tolerant reads), so a restarted daemon warm-starts with
//! measured rates instead of cold priors.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use pash_core::optimize::{MeasuredRate, MeasuredRates};
use pash_core::plan::{PlanOp, RegionPlan};

/// Exponential-decay factor for merging a new observation into stored
/// stats: `new = ALPHA·obs + (1−ALPHA)·old`. At 0.3 the store follows
/// a drifting workload within a handful of runs while one outlier
/// moves the estimate < a third of the way.
pub const DECAY_ALPHA: f64 = 0.3;

/// Default size bound for the on-disk profile tier.
pub const DEFAULT_PROFILE_DISK_BYTES: u64 = 4 * 1024 * 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Live counters for one plan node. All increments are relaxed
/// atomics on the node's own cache line — the profiling hook costs a
/// few nanoseconds per I/O call, never a lock.
#[derive(Debug, Default)]
pub struct NodeCounters {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    busy_ns: AtomicU64,
}

impl NodeCounters {
    /// Bytes the node consumed.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Bytes the node produced.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Wall-clock time the node's worker was alive.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }
}

/// The label a node's observations are aggregated under. Exec nodes
/// report their command name; synthetic plumbing (splits, relays,
/// cats, aggregators) is bracketed so the rate index can skip it —
/// the cost model has its own profiles for plumbing.
pub fn node_label(op: &PlanOp) -> String {
    match op {
        PlanOp::Exec { .. } => {
            let argv = op.exec_argv_lossy().unwrap_or_default();
            let name = argv
                .iter()
                .map(|s| s.as_str())
                .find(|s| *s != "--framed")
                .unwrap_or("");
            name.to_string()
        }
        PlanOp::Cat => "<cat>".to_string(),
        PlanOp::Split { .. } => "<split>".to_string(),
        PlanOp::Relay { .. } => "<relay>".to_string(),
        PlanOp::Aggregate { argv } => {
            format!("<agg:{}>", argv.first().map(|s| s.as_str()).unwrap_or(""))
        }
    }
}

/// A live per-region profile: one [`NodeCounters`] per plan node,
/// keyed by the region's own fingerprint (stable across changes to
/// sibling plan steps). Shared `Arc` across the node threads of one
/// region attempt.
#[derive(Debug)]
pub struct RegionProfile {
    fingerprint: u64,
    labels: Vec<String>,
    nodes: Vec<NodeCounters>,
}

impl RegionProfile {
    /// An empty profile shaped like `r`.
    pub fn for_region(r: &RegionPlan) -> Arc<RegionProfile> {
        Arc::new(RegionProfile {
            fingerprint: r.fingerprint(),
            labels: r.nodes.iter().map(|n| node_label(&n.op)).collect(),
            nodes: r.nodes.iter().map(|_| NodeCounters::default()).collect(),
        })
    }

    /// The profiled region's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the region has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label of node `id`.
    pub fn label(&self, id: usize) -> &str {
        &self.labels[id]
    }

    /// Node `id`'s counters.
    pub fn node(&self, id: usize) -> &NodeCounters {
        &self.nodes[id]
    }

    /// Credits consumed bytes to node `id`.
    pub fn add_in(&self, id: usize, n: u64) {
        self.nodes[id].bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Credits produced bytes to node `id`.
    pub fn add_out(&self, id: usize, n: u64) {
        self.nodes[id].bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Credits busy wall-time to node `id`.
    pub fn add_busy(&self, id: usize, d: Duration) {
        self.nodes[id]
            .busy_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// A profiling reader: counts consumed bytes into a node's counter.
pub struct CountingReader {
    inner: Box<dyn io::Read + Send>,
    profile: Arc<RegionProfile>,
    node: usize,
}

impl CountingReader {
    /// Wraps `inner`, crediting reads to `profile`'s node `node`.
    pub fn new(
        inner: Box<dyn io::Read + Send>,
        profile: Arc<RegionProfile>,
        node: usize,
    ) -> CountingReader {
        CountingReader {
            inner,
            profile,
            node,
        }
    }
}

impl io::Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.profile.add_in(self.node, n as u64);
        Ok(n)
    }
}

/// A profiling writer: counts produced bytes into a node's counter.
pub struct CountingWriter {
    inner: Box<dyn io::Write + Send>,
    profile: Arc<RegionProfile>,
    node: usize,
}

impl CountingWriter {
    /// Wraps `inner`, crediting writes to `profile`'s node `node`.
    pub fn new(
        inner: Box<dyn io::Write + Send>,
        profile: Arc<RegionProfile>,
        node: usize,
    ) -> CountingWriter {
        CountingWriter {
            inner,
            profile,
            node,
        }
    }
}

impl io::Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.profile.add_out(self.node, n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Decay-merged statistics for one node of one region shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// The node's aggregation label (see [`node_label`]).
    pub label: String,
    /// Smoothed bytes consumed per run.
    pub bytes_in: f64,
    /// Smoothed bytes produced per run.
    pub bytes_out: f64,
    /// Smoothed busy seconds per run.
    pub busy_s: f64,
    /// Observation mass behind the estimate. Grows toward
    /// `1/DECAY_ALPHA` with repeated observations; consumers use it
    /// as a trust signal.
    pub weight: f64,
}

impl NodeStats {
    fn fresh(label: String) -> NodeStats {
        NodeStats {
            label,
            bytes_in: 0.0,
            bytes_out: 0.0,
            busy_s: 0.0,
            weight: 0.0,
        }
    }

    /// Folds one observation in with exponential decay `alpha`. The
    /// first observation is taken verbatim (no prior to decay).
    pub fn decay_merge(&mut self, bytes_in: f64, bytes_out: f64, busy_s: f64, alpha: f64) {
        let a = alpha.clamp(0.0, 1.0);
        if self.weight <= 0.0 {
            self.bytes_in = bytes_in;
            self.bytes_out = bytes_out;
            self.busy_s = busy_s;
            self.weight = 1.0;
            return;
        }
        self.bytes_in = a * bytes_in + (1.0 - a) * self.bytes_in;
        self.bytes_out = a * bytes_out + (1.0 - a) * self.bytes_out;
        self.busy_s = a * busy_s + (1.0 - a) * self.busy_s;
        self.weight = 1.0 + (1.0 - a) * self.weight;
    }
}

/// Stored statistics for one region fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// The region's fingerprint ([`RegionPlan::fingerprint`]).
    pub fingerprint: u64,
    /// Per-node stats, indexed by node id.
    pub nodes: Vec<NodeStats>,
}

impl RegionStats {
    fn render(&self) -> String {
        let mut out = format!("pash-profile v1\nregion {:016x}\n", self.fingerprint);
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "n{i} {:?} in={:.3} out={:.3} busy={:.9} w={:.6}\n",
                n.label, n.bytes_in, n.bytes_out, n.busy_s, n.weight
            ));
        }
        out
    }

    fn parse(text: &str) -> Option<RegionStats> {
        let mut lines = text.lines();
        if lines.next()? != "pash-profile v1" {
            return None;
        }
        let fingerprint = u64::from_str_radix(lines.next()?.strip_prefix("region ")?, 16).ok()?;
        let mut nodes = Vec::new();
        for (i, line) in lines.enumerate() {
            let rest = line.strip_prefix(&format!("n{i} "))?;
            // The label is a Rust debug-quoted string; it never
            // contains a raw `" ` sequence, so the closing quote is
            // the last one before ` in=`.
            let in_at = rest.find(" in=")?;
            let label_field = &rest[..in_at];
            if !(label_field.starts_with('"') && label_field.ends_with('"')) {
                return None;
            }
            let label = label_field[1..label_field.len() - 1].replace("\\\"", "\"");
            let mut fields = rest[in_at + 1..].split(' ');
            let f = |field: Option<&str>, prefix: &str| -> Option<f64> {
                field?.strip_prefix(prefix)?.parse().ok()
            };
            let bytes_in = f(fields.next(), "in=")?;
            let bytes_out = f(fields.next(), "out=")?;
            let busy_s = f(fields.next(), "busy=")?;
            let weight = f(fields.next(), "w=")?;
            if fields.next().is_some()
                || !(bytes_in.is_finite()
                    && bytes_out.is_finite()
                    && busy_s.is_finite()
                    && weight.is_finite())
            {
                return None;
            }
            nodes.push(NodeStats {
                label,
                bytes_in,
                bytes_out,
                busy_s,
                weight,
            });
        }
        Some(RegionStats { fingerprint, nodes })
    }
}

/// The two-tier profile store.
///
/// The in-memory tier is the source of truth while the process lives;
/// every record is mirrored to the disk tier (when configured) with
/// the plan cache's atomic-rename discipline. Reads of the disk tier
/// are corruption-tolerant: files that fail to parse, or whose
/// content disagrees with their fingerprint file name, are ignored.
#[derive(Debug)]
pub struct ProfileStore {
    mem: Mutex<HashMap<u64, RegionStats>>,
    dir: Option<PathBuf>,
    /// Disk-tier size bound; oldest-mtime profiles are evicted past
    /// it. 0 disables the bound.
    max_disk_bytes: u64,
    alpha: f64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileStore {
    /// A memory-only store.
    pub fn in_memory() -> ProfileStore {
        ProfileStore {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            max_disk_bytes: 0,
            alpha: DECAY_ALPHA,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Opens a store with a disk tier at `dir` (created if missing)
    /// and warm-starts the memory tier from every readable profile
    /// file found there.
    pub fn open(dir: &Path) -> io::Result<ProfileStore> {
        std::fs::create_dir_all(dir)?;
        let store = ProfileStore {
            dir: Some(dir.to_path_buf()),
            max_disk_bytes: DEFAULT_PROFILE_DISK_BYTES,
            ..ProfileStore::in_memory()
        };
        let mut mem = HashMap::new();
        for entry in std::fs::read_dir(dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("prof") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(expect_fp) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            match RegionStats::parse(&text) {
                // Self-verification: the content's fingerprint must
                // match the file name it was stored under.
                Some(rs) if rs.fingerprint == expect_fp => {
                    mem.insert(rs.fingerprint, rs);
                }
                _ => {}
            }
        }
        *lock(&store.mem) = mem;
        Ok(store)
    }

    /// Overrides the disk-tier size bound (0 disables it).
    pub fn with_disk_cap(mut self, bytes: u64) -> ProfileStore {
        self.max_disk_bytes = bytes;
        self
    }

    /// Number of region shapes with stored observations.
    pub fn regions(&self) -> usize {
        lock(&self.mem).len()
    }

    /// Lookups that found measured data ([`Self::rates_for`]).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found none.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Folds one finished region attempt into the store and mirrors
    /// the merged stats to the disk tier.
    pub fn record(&self, p: &RegionProfile) {
        let merged = {
            let mut mem = lock(&self.mem);
            let rs = mem.entry(p.fingerprint()).or_insert_with(|| RegionStats {
                fingerprint: p.fingerprint(),
                nodes: (0..p.len())
                    .map(|i| NodeStats::fresh(p.label(i).to_string()))
                    .collect(),
            });
            // A fingerprint collision with a different node count is
            // astronomically unlikely; resize defensively anyway.
            while rs.nodes.len() < p.len() {
                let i = rs.nodes.len();
                rs.nodes.push(NodeStats::fresh(p.label(i).to_string()));
            }
            for i in 0..p.len() {
                let c = p.node(i);
                rs.nodes[i].decay_merge(
                    c.bytes_in() as f64,
                    c.bytes_out() as f64,
                    c.busy().as_secs_f64(),
                    self.alpha,
                );
            }
            rs.clone()
        };
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{:016x}.prof", merged.fingerprint));
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            let _ =
                std::fs::write(&tmp, merged.render()).and_then(|()| std::fs::rename(&tmp, &path));
            if self.max_disk_bytes > 0 {
                let _ = evict_lru_by_mtime(dir, self.max_disk_bytes);
            }
        }
    }

    /// A snapshot of one region's stored stats.
    pub fn region_stats(&self, fingerprint: u64) -> Option<RegionStats> {
        lock(&self.mem).get(&fingerprint).cloned()
    }

    /// The derived command-rate index: every exec node observation
    /// across every stored region, aggregated by command name into
    /// the [`MeasuredRate`]s the simulator's cost model calibrates
    /// from. Nodes with no byte or time signal (e.g. process-backend
    /// FIFO interiors, recorded as zero) are skipped rather than
    /// polluting the estimate.
    pub fn rates(&self) -> MeasuredRates {
        let mem = lock(&self.mem);
        // label → (Σw, Σw·rate, Σw·ratio)
        let mut acc: HashMap<String, (f64, f64, f64)> = HashMap::new();
        for rs in mem.values() {
            for n in &rs.nodes {
                if n.label.is_empty() || n.label.starts_with('<') {
                    continue;
                }
                if !(n.weight > 0.0 && n.bytes_in > 0.0 && n.busy_s > 1e-9) {
                    continue;
                }
                let rate_mb = n.bytes_in / n.busy_s / 1e6;
                let ratio = n.bytes_out / n.bytes_in;
                let e = acc.entry(n.label.clone()).or_insert((0.0, 0.0, 0.0));
                e.0 += n.weight;
                e.1 += n.weight * rate_mb;
                e.2 += n.weight * ratio;
            }
        }
        acc.into_iter()
            .map(|(label, (w, wr, wq))| {
                (
                    label,
                    MeasuredRate {
                        mb_per_s: wr / w,
                        out_ratio: wq / w,
                        weight: w,
                    },
                )
            })
            .collect()
    }

    /// The rate index restricted to `commands`, counting a store hit
    /// when at least one requested command has measured data and a
    /// miss otherwise. This is the daemon's per-request entry point —
    /// the hit/miss counters are what `servicebench` asserts
    /// convergence (and warm restarts) on.
    pub fn rates_for(&self, commands: &[String]) -> MeasuredRates {
        let mut all = self.rates();
        all.retain(|k, _| commands.iter().any(|c| c == k));
        if all.is_empty() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        all
    }
}

/// Shrinks a cache directory to `max_bytes` by deleting
/// oldest-mtime files first (recursing into subdirectories). Returns
/// how many files were removed. Dangling references are fine by
/// construction: both the plan cache and the profile store treat a
/// missing or unreadable file as a cold miss.
pub fn evict_lru_by_mtime(root: &Path, max_bytes: u64) -> io::Result<usize> {
    let mut files: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            let Ok(md) = entry.metadata() else { continue };
            if md.is_dir() {
                stack.push(path);
            } else {
                let mtime = md.modified().unwrap_or(std::time::UNIX_EPOCH);
                files.push((mtime, md.len(), path));
            }
        }
    }
    let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
    if total <= max_bytes {
        return Ok(0);
    }
    // Oldest first; ties broken by path for determinism.
    files.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.cmp(&b.2)));
    let mut removed = 0;
    for (_, len, path) in files {
        if total <= max_bytes {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pash_core::compile::{compile, PashConfig};

    fn sample_region() -> RegionPlan {
        let out = compile(
            "cat in.txt | tr A-Z a-z | sort > out.txt",
            &PashConfig {
                width: 2,
                ..Default::default()
            },
        )
        .expect("compile");
        let r = out.plan.regions().next().expect("region").clone();
        r
    }

    fn observe(p: &RegionProfile, scale: u64) {
        for i in 0..p.len() {
            p.add_in(i, 1000 * scale);
            p.add_out(i, 500 * scale);
            p.add_busy(i, Duration::from_micros(10 * scale));
        }
    }

    #[test]
    fn labels_name_commands_and_bracket_plumbing() {
        let r = sample_region();
        let p = RegionProfile::for_region(&r);
        let labels: Vec<&str> = (0..p.len()).map(|i| p.label(i)).collect();
        assert!(labels.contains(&"tr"), "{labels:?}");
        assert!(labels.iter().any(|l| l.starts_with('<')), "{labels:?}");
    }

    #[test]
    fn decay_merge_first_observation_verbatim_then_smooths() {
        let mut s = NodeStats::fresh("tr".into());
        s.decay_merge(1000.0, 500.0, 0.5, 0.3);
        assert_eq!(s.bytes_in, 1000.0);
        assert_eq!(s.weight, 1.0);
        s.decay_merge(2000.0, 500.0, 0.5, 0.3);
        // 0.3·2000 + 0.7·1000 = 1300.
        assert!((s.bytes_in - 1300.0).abs() < 1e-9);
        assert!((s.weight - 1.7).abs() < 1e-9);
        // Weight converges toward 1/alpha.
        for _ in 0..100 {
            s.decay_merge(2000.0, 500.0, 0.5, 0.3);
        }
        assert!((s.weight - 1.0 / 0.3).abs() < 1e-6);
        assert!((s.bytes_in - 2000.0).abs() < 1.0);
    }

    #[test]
    fn rates_index_skips_plumbing_and_averages_by_weight() {
        let store = ProfileStore::in_memory();
        let r = sample_region();
        let p = RegionProfile::for_region(&r);
        observe(&p, 1);
        store.record(&p);
        let rates = store.rates();
        assert!(rates.contains_key("tr"));
        assert!(rates.keys().all(|k| !k.starts_with('<')));
        let tr = &rates["tr"];
        // 1000 bytes / 10 µs = 100 MB/s; ratio 0.5.
        assert!((tr.mb_per_s - 100.0).abs() < 1e-6, "{tr:?}");
        assert!((tr.out_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rates_for_counts_hits_and_misses() {
        let store = ProfileStore::in_memory();
        assert!(store.rates_for(&["tr".to_string()]).is_empty());
        assert_eq!((store.hits(), store.misses()), (0, 1));
        let r = sample_region();
        let p = RegionProfile::for_region(&r);
        observe(&p, 1);
        store.record(&p);
        assert!(!store.rates_for(&["tr".to_string()]).is_empty());
        assert_eq!((store.hits(), store.misses()), (1, 1));
    }

    #[test]
    fn disk_tier_round_trips_across_reopen() {
        let dir = std::env::temp_dir().join(format!("pash-prof-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample_region();
        {
            let store = ProfileStore::open(&dir).expect("open");
            let p = RegionProfile::for_region(&r);
            observe(&p, 1);
            store.record(&p);
        }
        let warm = ProfileStore::open(&dir).expect("reopen");
        assert_eq!(warm.regions(), 1, "warm start must reload the profile");
        let rs = warm.region_stats(r.fingerprint()).expect("stats");
        assert!(rs.nodes.iter().any(|n| n.label == "tr" && n.weight > 0.0));
        assert!(!warm.rates_for(&["tr".to_string()]).is_empty());
        assert_eq!(warm.hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_profile_files_are_ignored() {
        let dir = std::env::temp_dir().join(format!("pash-prof-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample_region();
        let store = ProfileStore::open(&dir).expect("open");
        let p = RegionProfile::for_region(&r);
        observe(&p, 1);
        store.record(&p);
        let path = dir.join(format!("{:016x}.prof", r.fingerprint()));
        assert!(path.exists());
        // Truncate mid-line: parse fails, warm start skips the file.
        std::fs::write(&path, "pash-profile v1\nregion dead").expect("corrupt");
        let warm = ProfileStore::open(&dir).expect("reopen");
        assert_eq!(warm.regions(), 0);
        // A well-formed file under the wrong name fails
        // self-verification too.
        let rogue = RegionStats {
            fingerprint: 0x1234,
            nodes: vec![],
        };
        std::fs::write(dir.join("0000000000000001.prof"), rogue.render()).expect("rogue");
        let warm = ProfileStore::open(&dir).expect("reopen");
        assert_eq!(warm.regions(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_render_parse_round_trip() {
        let rs = RegionStats {
            fingerprint: 0xdead_beef,
            nodes: vec![
                NodeStats {
                    label: "grep \"quoted\"".to_string(),
                    bytes_in: 12345.5,
                    bytes_out: 0.25,
                    busy_s: 0.001234567,
                    weight: 2.89,
                },
                NodeStats::fresh("<split>".to_string()),
            ],
        };
        let parsed = RegionStats::parse(&rs.render()).expect("parse");
        assert_eq!(parsed.fingerprint, rs.fingerprint);
        assert_eq!(parsed.nodes.len(), 2);
        assert_eq!(parsed.nodes[0].label, rs.nodes[0].label);
        assert!((parsed.nodes[0].bytes_in - rs.nodes[0].bytes_in).abs() < 1e-2);
        assert!(RegionStats::parse("junk").is_none());
        assert!(RegionStats::parse("pash-profile v1\nregion zz\n").is_none());
    }

    #[test]
    fn lru_eviction_keeps_newest_within_cap() {
        let dir = std::env::temp_dir().join(format!("pash-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub")).expect("mkdir");
        let old = dir.join("old.prof");
        let mid = dir.join("sub").join("mid.prof");
        let new = dir.join("new.prof");
        std::fs::write(&old, vec![0u8; 400]).expect("write");
        std::fs::write(&mid, vec![0u8; 400]).expect("write");
        std::fs::write(&new, vec![0u8; 400]).expect("write");
        // Order mtimes explicitly — same-millisecond writes are
        // common on fast filesystems.
        let t = std::time::SystemTime::now();
        for (path, age_s) in [(&old, 30u64), (&mid, 20), (&new, 10)] {
            let f = std::fs::File::options()
                .write(true)
                .open(path)
                .expect("open");
            f.set_modified(t - Duration::from_secs(age_s))
                .expect("set mtime");
        }
        let removed = evict_lru_by_mtime(&dir, 900).expect("evict");
        assert_eq!(removed, 1);
        assert!(!old.exists(), "oldest file evicted first");
        assert!(mid.exists() && new.exists());
        let removed = evict_lru_by_mtime(&dir, 900).expect("evict again");
        assert_eq!(removed, 0, "already within cap");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
