//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The container has no crates.io access, so the real crate cannot be
//! fetched. This shim provides `Mutex`, `MutexGuard`, and `Condvar`
//! with parking_lot's signatures (`lock()` returns the guard directly,
//! `Condvar::wait` takes `&mut MutexGuard`), implemented on
//! `std::sync`. std's lock poisoning is ignored (`into_inner` on a
//! poisoned lock), matching parking_lot, which has no poisoning: a
//! panic while holding the lock leaves the data as-is and later
//! acquisitions proceed normally.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive with parking_lot's panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`], which must move the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` shape.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present before wait");
        guard.guard = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().expect("waiter finished");
    }
}
