//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The container has no crates.io access, so the real crate cannot be
//! fetched. This shim keeps the bench sources compiling unchanged
//! (`Criterion`, `benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`) and reports
//! simple wall-clock statistics (min/median/mean per iteration)
//! instead of criterion's full statistical machinery.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Work done per iteration, so results can be reported as throughput
/// next to raw times (criterion's `Throughput`).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many bytes.
    Bytes(u64),
    /// Each iteration processes this many elements.
    Elements(u64),
}

impl Throughput {
    /// Formats the per-second rate at the median time.
    fn rate(&self, median: Duration) -> String {
        let secs = median.as_secs_f64().max(1e-12);
        match self {
            Throughput::Bytes(n) => {
                const MIB: f64 = 1024.0 * 1024.0;
                let bps = *n as f64 / secs;
                if bps >= MIB * 1024.0 {
                    format!("{:.2} GiB/s", bps / (MIB * 1024.0))
                } else if bps >= MIB {
                    format!("{:.1} MiB/s", bps / MIB)
                } else {
                    format!("{:.1} KiB/s", bps / 1024.0)
                }
            }
            Throughput::Elements(n) => {
                let eps = *n as f64 / secs;
                if eps >= 1e6 {
                    format!("{:.2} Melem/s", eps / 1e6)
                } else if eps >= 1e3 {
                    format!("{:.1} Kelem/s", eps / 1e3)
                } else {
                    format!("{eps:.1} elem/s")
                }
            }
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_benchmark(&name.into(), samples, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration; subsequent benchmarks in the
    /// group report bytes/sec (or elements/sec) next to the times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the body.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per sample, recording wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut b);
    if b.times.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.times.sort_unstable();
    let min = b.times[0];
    let median = b.times[b.times.len() / 2];
    let mean = b.times.iter().sum::<Duration>() / b.times.len() as u32;
    let thrpt = throughput
        .map(|t| format!("  thrpt {:>12}", t.rate(median)))
        .unwrap_or_default();
    println!(
        "{name:<40} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}{thrpt}  ({} samples)",
        min,
        median,
        mean,
        b.times.len()
    );
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`);
            // this shim runs everything and ignores filters.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_rates_format() {
        let ms = Duration::from_millis(1);
        assert!(Throughput::Bytes(2 * 1024 * 1024)
            .rate(ms)
            .contains("GiB/s"));
        assert!(Throughput::Bytes(10 * 1024).rate(ms).contains("MiB/s"));
        assert!(Throughput::Elements(5000).rate(ms).contains("Melem/s"));
        assert!(Throughput::Elements(10).rate(ms).contains("Kelem/s"));
    }

    #[test]
    fn group_throughput_applies_to_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2).throughput(Throughput::Bytes(1024));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        // 3 timed samples + 1 warm-up.
        assert_eq!(ran, 4);
    }
}
