//! Offline shim for the subset of `crossbeam` this workspace uses.
//!
//! The container has no crates.io access, so the real crate cannot be
//! fetched. Only `crossbeam::channel::{bounded, unbounded}` with
//! blocking `send`/`recv`/`iter` and hangup detection is provided,
//! implemented on a mutex-and-condvar ring buffer.

pub mod channel;
