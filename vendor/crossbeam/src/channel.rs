//! Multi-producer multi-consumer channels with crossbeam's API shape.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Capacity policy of a channel.
#[derive(Clone, Copy)]
enum Capacity {
    Unbounded,
    Bounded(usize),
}

struct Inner<T> {
    queue: VecDeque<T>,
    capacity: Capacity,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(Capacity::Unbounded)
}

/// Creates a channel holding at most `cap` messages; `send` blocks
/// when full. `cap` of zero behaves as capacity one (the shim has no
/// rendezvous mode and this workspace never requests one).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Capacity::Bounded(cap.max(1)))
}

fn with_capacity<T>(capacity: Capacity) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when all receivers are gone.
/// Carries the unsent message, like crossbeam's.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`]: nothing queued right now
/// ([`TryRecvError::Empty`]) or nothing queued and every sender gone
/// ([`TryRecvError::Disconnected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and has no remaining senders.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued, or returns it in
    /// `SendError` if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = match inner.capacity {
                Capacity::Unbounded => false,
                Capacity::Bounded(cap) => inner.queue.len() >= cap,
            };
            if !full {
                inner.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .not_full
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake receivers so they observe the hangup.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or returns `RecvError` once the
    /// channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues a message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = inner.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A blocking iterator over received messages; ends at hangup.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Senders blocked on a full queue must wake and fail.
            inner.queue.clear();
            self.shared.not_full.notify_all();
        }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).expect("send");
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(2);
        let t = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).expect("send");
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().expect("sender");
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_after_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).expect("send");
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(0).expect("fill");
        let t = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(t.join().expect("join").is_err());
    }
}
