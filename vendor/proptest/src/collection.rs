//! Collection strategies (`proptest::collection`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// The size specification accepted by [`vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(0usize..5, 2..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
