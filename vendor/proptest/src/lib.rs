//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so the real crate cannot be
//! fetched. This shim keeps property-test sources compiling unchanged:
//! the [`Strategy`] trait with `prop_map`, range and string-pattern
//! strategies, [`collection::vec`], [`Just`], `prop_oneof!`, the
//! `proptest!` test macro, and `prop_assert*!`.
//!
//! Differences from real proptest, acceptable here: sampling is
//! deterministic (seeded from the test name, so runs are hermetic and
//! reproducible), failures are plain panics, and there is no
//! shrinking — a failing case prints its inputs via the assertion
//! message instead of minimizing them.

use std::ops::Range;

pub mod collection;
pub mod pattern;

/// The deterministic generator threaded through all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name), so every test
    /// gets a distinct but stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// SplitMix64 step.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking: a strategy just samples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Boxes the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

/// String literals are regex-subset strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// String strategies (`proptest::string`).
pub mod string {
    use super::{pattern, Strategy, TestRng};

    /// Error type of [`string_regex`] (this shim panics on bad
    /// patterns at sample time instead of reporting them here).
    #[derive(Debug)]
    pub struct Error;

    /// Strategy generating strings matching a regex subset.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        pattern: String,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            pattern::sample(&self.pattern, rng)
        }
    }

    /// Builds a strategy from a regex pattern.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        Ok(RegexGeneratorStrategy {
            pattern: pattern.to_string(),
        })
    }
}

/// Uniformly picks among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Starts a union from its first alternative. Taking the first
    /// strategy by concrete type (not boxed) pins `T` eagerly, which
    /// keeps closure-parameter inference working downstream.
    pub fn new<S: Strategy<Value = T> + 'static>(first: S) -> Self {
        Union {
            options: vec![Box::new(first)],
        }
    }

    /// Adds another equally-weighted alternative.
    pub fn or<S: Strategy<Value = T> + 'static>(mut self, strategy: S) -> Self {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Number of cases each `proptest!` test runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many sampled cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Picks one of several strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {
        $crate::Union::new($first)$(.or($rest))*
    };
}

/// Plain assertion under this shim (no shrinking to report back to).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Plain equality assertion under this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Plain inequality assertion under this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Declares property tests: each runs `cases` times over freshly
/// sampled inputs from the named strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut rng);
                    )+
                    let run = || $body;
                    let _ = case;
                    run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn oneof_and_just_mix() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof!["[a-z]{1,3}", Just("same".to_string())];
        let mut saw_just = false;
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            if v == "same" {
                saw_just = true;
            } else {
                assert!(v.len() <= 3 && v.bytes().all(|b| b.is_ascii_lowercase()));
            }
        }
        assert!(saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0usize..10, s in "[0-9]{1,4}") {
            prop_assert!(x < 10);
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }
    }
}
