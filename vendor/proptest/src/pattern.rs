//! String generation from a small regex subset.
//!
//! Real proptest interprets `&str` strategies as full regexes. This
//! shim supports what the workspace's property tests (and likely
//! future ones) actually write: literal characters, `[...]` classes
//! with ranges, `{n}` / `{m,n}` bounded repetition, and `?`/`*`/`+`
//! (the unbounded ones capped at 8 repetitions).

use crate::TestRng;

#[derive(Debug)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// A character class: concrete choices to draw uniformly from.
    Class(Vec<char>),
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Samples one string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min + 1) as u64;
        let count = piece.min + rng.below(span) as usize;
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(choices) => {
                    let i = rng.below(choices.len() as u64) as usize;
                    out.push(choices[i]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let class = parse_class(&chars[i + 1..i + close]);
                i += close + 1;
                Atom::Class(class)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("trailing '\\' in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(escaped(c))
            }
            '.' => {
                i += 1;
                Atom::Class((' '..='~').collect())
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn escaped(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        other => other,
    }
}

fn parse_class(body: &[char]) -> Vec<char> {
    assert!(!body.is_empty(), "empty character class");
    assert!(body[0] != '^', "negated classes are not supported");
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range {lo}-{hi}");
            out.extend(lo..=hi);
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

/// Parses an optional repetition operator at `*i`, advancing past it.
fn parse_repeat(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    const UNBOUNDED_CAP: usize = 8;
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[*i + 1..*i + close].iter().collect();
            *i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let lo: usize = lo.trim().parse().expect("repeat lower bound");
                    let hi: usize = hi.trim().parse().expect("repeat upper bound");
                    assert!(lo <= hi, "inverted repeat {{{body}}}");
                    (lo, hi)
                }
                None => {
                    let n: usize = body.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_CAP)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("pattern-tests")
    }

    #[test]
    fn class_with_bounded_repeat() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = sample("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn mixed_class_members() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = sample("[a-z][a-z ,.]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            let first = s.chars().next().expect("non-empty");
            assert!(first.is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || " ,.".contains(c)));
        }
    }

    #[test]
    fn literals_and_operators() {
        let mut rng = rng();
        let s = sample("ab{3}c?", &mut rng);
        assert!(s.starts_with("abbb"));
        for _ in 0..50 {
            let s = sample("x+", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
        }
    }
}
