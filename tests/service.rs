//! `pashd` end-to-end: a real daemon process (spawned from the built
//! binary, so restarts cross a true process boundary and the
//! in-memory compile memo genuinely dies), driven over its
//! Unix-domain socket.
//!
//! * concurrent differential — N client threads firing mixed corpus
//!   scripts get byte-identical stdout/status/output-files to direct
//!   `pash::run`;
//! * warm restart — a fresh daemon process over the same cache
//!   directory serves tier-2 (disk) hits with identical results;
//! * crash safety — truncated/corrupted cache entries fall back to
//!   recompilation, never wrong output;
//! * the same differential holds under the fault-injection
//!   supervisor, cold and disk-warm.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pash::core::compile::PashConfig;
use pash::core::dfg::SplitPolicy;
use pash::coreutils::fs::MemFs;
use pash::runtime::service::{CacheTier, Client, RunRequest};
use pash::workloads as wl;
use pash::{run, BackendOutput, RunEnv};

/// Mixed corpus: stateless, pure-with-aggregator, file-writing, and
/// multi-region scripts, at several widths and split policies.
fn corpus() -> Vec<(&'static str, u32, SplitPolicy)> {
    vec![
        ("cat in.txt | tr A-Z a-z | sort", 4, SplitPolicy::Sized),
        ("cat in.txt | grep the | wc -l", 2, SplitPolicy::RoundRobin),
        (
            "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 10",
            4,
            SplitPolicy::Sized,
        ),
        ("cat in.txt | tr A-Z a-z | grep the > out.txt", 2, SplitPolicy::Sized),
        ("cat in.txt | tr a-z A-Z | sort | uniq > out.txt\ncat in.txt | wc -lw", 4, SplitPolicy::RoundRobin),
        ("cat in.txt | sort", 1, SplitPolicy::Off),
    ]
}

fn corpus_input() -> Vec<u8> {
    wl::text_corpus(11, 96 * 1024)
}

/// What a run left behind, on either path.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    stdout: Vec<u8>,
    status: i32,
    out_file: Option<Vec<u8>>,
}

/// The ground truth: direct `pash::run` on a fresh filesystem.
fn direct(script: &str, width: u32, split: SplitPolicy) -> Observed {
    let fs = Arc::new(MemFs::new());
    fs.add("in.txt", corpus_input());
    let env = RunEnv {
        fs,
        ..Default::default()
    };
    let cfg = PashConfig {
        width: width.max(1) as usize,
        split,
        ..Default::default()
    };
    match run(script, &cfg, "threads", &env).expect("direct run") {
        BackendOutput::Execution(o) => Observed {
            stdout: o.stdout,
            status: o.status,
            out_file: env.fs.read("out.txt").ok(),
        },
        other => panic!("direct run produced {other:?}"),
    }
}

/// A daemon child process; killed on drop so failed tests don't leak.
struct DaemonProc {
    child: Child,
    socket: PathBuf,
}

impl DaemonProc {
    fn client(&self) -> Client {
        Client::connect(&self.socket).expect("connect")
    }

    fn stop(mut self) {
        let _ = self.client().shutdown();
        let _ = self.child.wait();
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pash-service-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Spawns `pashd` and waits until its socket accepts connections.
fn spawn_daemon(dir: &Path, extra_args: &[&str]) -> DaemonProc {
    let socket = dir.join("pashd.sock");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pashd"));
    cmd.arg("--socket")
        .arg(&socket)
        .args(extra_args)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn pashd");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if Client::connect(&socket).is_ok() {
            return DaemonProc { child, socket };
        }
        assert!(Instant::now() < deadline, "pashd never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn seed_corpus(daemon: &DaemonProc) {
    daemon
        .client()
        .put_file("in.txt", corpus_input())
        .expect("seed in.txt");
}

fn request(script: &str, width: u32, split: SplitPolicy) -> RunRequest {
    RunRequest {
        script: script.to_string(),
        backend: "threads".to_string(),
        width,
        split,
        stdin: Vec::new(),
    }
}

fn observe_response(resp: pash::runtime::service::RunResponse) -> (Observed, CacheTier) {
    let out_file = resp
        .files
        .iter()
        .find(|(p, _)| p == "out.txt")
        .map(|(_, b)| b.clone());
    (
        Observed {
            stdout: resp.stdout,
            status: resp.status,
            out_file,
        },
        resp.tier,
    )
}

/// Pulls an integer counter out of the metrics JSON (hand-rolled, like
/// the rest of the repo's JSON handling).
fn metric(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn concurrent_clients_match_direct_runs() {
    let dir = scratch_dir("diff");
    let daemon = spawn_daemon(&dir, &["--max-concurrent", "3"]);
    seed_corpus(&daemon);
    let cases: Vec<_> = corpus()
        .into_iter()
        .map(|(script, width, split)| {
            let expect = direct(script, width, split);
            (script, width, split, expect)
        })
        .collect();
    let cases = Arc::new(cases);
    let daemon = Arc::new(daemon);
    let mut clients = Vec::new();
    for t in 0..4usize {
        let cases = cases.clone();
        let daemon = daemon.clone();
        clients.push(std::thread::spawn(move || {
            let mut client = daemon.client();
            for round in 0..2 {
                for i in 0..cases.len() {
                    // Each thread walks the corpus at a different
                    // phase so distinct scripts overlap in flight.
                    let (script, width, split, expect) = &cases[(i + t + round) % cases.len()];
                    let resp = client
                        .run(request(script, *width, *split))
                        .expect("daemon run");
                    let (got, _tier) = observe_response(resp);
                    assert_eq!(&got, expect, "thread {t} diverged on {script:?}");
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let json = daemon.client().metrics().expect("metrics");
    let total = 4 * 2 * cases.len() as u64;
    assert_eq!(metric(&json, "run_requests"), total);
    assert!(
        metric(&json, "tier1_hits") > 0,
        "warm requests must hit the in-memory tier: {json}"
    );
    assert_eq!(metric(&json, "errors"), 0, "{json}");
    Arc::try_unwrap(daemon)
        .ok()
        .expect("all clients joined")
        .stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_serves_disk_tier_with_identical_results() {
    let dir = scratch_dir("warm");
    let cache = dir.join("plan-cache");
    let cache_arg = cache.to_string_lossy().into_owned();
    let cases: Vec<_> = corpus()
        .into_iter()
        .map(|(script, width, split)| {
            let expect = direct(script, width, split);
            (script, width, split, expect)
        })
        .collect();

    // Cold process: populates both tiers.
    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_arg]);
    seed_corpus(&daemon);
    let mut client = daemon.client();
    for (script, width, split, expect) in &cases {
        let (got, tier) = observe_response(
            client
                .run(request(script, *width, *split))
                .expect("cold run"),
        );
        assert_eq!(&got, expect, "cold {script:?}");
        assert_eq!(tier, CacheTier::Cold, "first sight of {script:?}");
        // Same process again: the in-memory tier serves it.
        let (again, tier) = observe_response(
            client
                .run(request(script, *width, *split))
                .expect("memory run"),
        );
        assert_eq!(&again, expect);
        assert_eq!(tier, CacheTier::Memory, "repeat of {script:?}");
    }
    drop(client);
    daemon.stop();

    // Fresh process, same cache dir: the in-memory memo is gone, the
    // disk tier must serve every script — byte-identically.
    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_arg]);
    seed_corpus(&daemon);
    let mut client = daemon.client();
    for (script, width, split, expect) in &cases {
        let (got, tier) = observe_response(
            client
                .run(request(script, *width, *split))
                .expect("warm run"),
        );
        assert_eq!(&got, expect, "disk-warm {script:?}");
        assert_eq!(tier, CacheTier::Disk, "restart must warm-start {script:?}");
    }
    let json = client.metrics().expect("metrics");
    assert_eq!(metric(&json, "tier2_hits"), cases.len() as u64, "{json}");
    assert_eq!(metric(&json, "compile_misses"), 0, "{json}");
    drop(client);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_recompile_never_corrupt_output() {
    let dir = scratch_dir("crash");
    let cache = dir.join("plan-cache");
    let cache_arg = cache.to_string_lossy().into_owned();
    let (script, width, split) = ("cat in.txt | tr A-Z a-z | sort", 4, SplitPolicy::Sized);
    let expect = direct(script, width, split);

    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_arg]);
    seed_corpus(&daemon);
    let (got, tier) = observe_response(
        daemon
            .client()
            .run(request(script, width, split))
            .expect("cold run"),
    );
    assert_eq!(got, expect);
    assert_eq!(tier, CacheTier::Cold);
    daemon.stop();

    // Simulate a crash mid-write / disk corruption: truncate every
    // plan file and scribble over every key file in turn.
    let mangle = |f: &dyn Fn(&Path, Vec<u8>)| {
        for sub in ["plans", "keys"] {
            for entry in std::fs::read_dir(cache.join(sub)).expect("cache dir") {
                let path = entry.expect("entry").path();
                let bytes = std::fs::read(&path).expect("read entry");
                f(&path, bytes);
            }
        }
    };
    mangle(&|path, bytes| {
        std::fs::write(path, &bytes[..bytes.len() / 3]).expect("truncate");
    });
    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_arg]);
    seed_corpus(&daemon);
    let (got, tier) = observe_response(
        daemon
            .client()
            .run(request(script, width, split))
            .expect("run over truncated cache"),
    );
    assert_eq!(got, expect, "truncated cache must not change output");
    assert_eq!(tier, CacheTier::Cold, "truncated entry must recompile");
    daemon.stop();

    mangle(&|path, mut bytes| {
        for b in bytes.iter_mut() {
            *b ^= 0x5a;
        }
        std::fs::write(path, bytes).expect("scramble");
    });
    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_arg]);
    seed_corpus(&daemon);
    let (got, tier) = observe_response(
        daemon
            .client()
            .run(request(script, width, split))
            .expect("run over scrambled cache"),
    );
    assert_eq!(got, expect, "scrambled cache must not change output");
    assert_eq!(tier, CacheTier::Cold);
    // The recompile heals the cache: a further restart disk-hits.
    daemon.stop();
    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_arg]);
    seed_corpus(&daemon);
    let (got, tier) = observe_response(
        daemon
            .client()
            .run(request(script, width, split))
            .expect("run over healed cache"),
    );
    assert_eq!(got, expect);
    assert_eq!(tier, CacheTier::Disk, "rewrite must heal the entry");
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}

#[test]
fn sigterm_drains_in_flight_requests_without_torn_responses() {
    let dir = scratch_dir("drain");
    let daemon = spawn_daemon(&dir, &["--max-concurrent", "1"]);
    // A big enough corpus that four serialized width-4 runs are still
    // in flight when the signal lands.
    let input = wl::text_corpus(11, 1 << 20);
    daemon
        .client()
        .put_file("in.txt", input.clone())
        .expect("seed in.txt");
    let script =
        "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq -c | sort -rn | head -n 10";
    let expect = {
        let fs = Arc::new(MemFs::new());
        fs.add("in.txt", input);
        let env = RunEnv {
            fs,
            ..Default::default()
        };
        let cfg = PashConfig {
            width: 4,
            split: SplitPolicy::RoundRobin,
            ..Default::default()
        };
        match run(script, &cfg, "threads", &env).expect("direct run") {
            BackendOutput::Execution(o) => o.stdout,
            other => panic!("direct run produced {other:?}"),
        }
    };

    // Four clients send one request each; with admission width 1 they
    // queue behind each other, so several are mid-service when the
    // daemon is told to die.
    let mut clients = Vec::new();
    for _ in 0..4 {
        let mut client = daemon.client();
        let req = request(script, 4, SplitPolicy::RoundRobin);
        clients.push(std::thread::spawn(move || client.run(req)));
    }
    std::thread::sleep(Duration::from_millis(150));
    let pid = daemon.child.id() as i32;
    assert_eq!(unsafe { kill(pid, 15) }, 0, "SIGTERM delivered");

    // The drain contract: every request that was already accepted gets
    // its complete response — correct bytes, never a torn frame.
    for c in clients {
        let resp = c
            .join()
            .expect("client thread")
            .expect("in-flight request completes across SIGTERM");
        assert_eq!(resp.stdout, expect, "drained response diverged");
        assert_eq!(resp.status, 0);
    }

    // And the daemon exited the graceful path: serve() returned Ok, so
    // the process status is success, not a signal death.
    let mut daemon = daemon;
    let status = daemon.child.wait().expect("daemon exit");
    assert!(status.success(), "graceful SIGTERM exit, got {status:?}");
    assert!(
        Client::connect(&daemon.socket).is_err(),
        "socket is gone after shutdown"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_injected_daemon_stays_byte_identical() {
    let dir = scratch_dir("fault");
    let cache = dir.join("plan-cache");
    let cache_arg = cache.to_string_lossy().into_owned();
    // A persistent kill-worker fault: every attempt dies, so the
    // supervisor must exhaust retries and take the sequential
    // fallback — on plans from either tier.
    let fault_args = [
        "--cache-dir",
        cache_arg.as_str(),
        "--retries",
        "1",
        "--fault",
        "kill-worker:5:4294967295",
    ];
    let (script, width, split) = (
        "cat in.txt | tr A-Z a-z | grep the > out.txt",
        4,
        SplitPolicy::RoundRobin,
    );
    let expect = direct(script, width, split);

    let daemon = spawn_daemon(&dir, &fault_args);
    seed_corpus(&daemon);
    let mut client = daemon.client();
    for round in 0..2 {
        let (got, _tier) = observe_response(
            client
                .run(request(script, width, split))
                .expect("faulted run"),
        );
        assert_eq!(
            got, expect,
            "fault-injected daemon diverged (round {round})"
        );
    }
    drop(client);
    daemon.stop();

    // Restart under the same fault: the disk-tier plan (and its
    // sequential-fallback plan) must carry the supervisor too.
    let daemon = spawn_daemon(&dir, &fault_args);
    seed_corpus(&daemon);
    let (got, tier) = observe_response(
        daemon
            .client()
            .run(request(script, width, split))
            .expect("disk-warm faulted run"),
    );
    assert_eq!(got, expect, "disk-warm fault-injected daemon diverged");
    assert_eq!(tier, CacheTier::Disk);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
