//! Cross-backend differential suite: every corpus script must produce
//! byte-identical stdout, byte-identical output files, and the same
//! exit status under the `shell` backend (emitted script on a real
//! `/bin/sh`), the `threads` backend (in-process), the `processes`
//! backend (real children over FIFOs), and the `remote` backend
//! (plan regions shipped to `pash-worker` daemons over sockets).
//!
//! This is the strongest fidelity check the reproduction has: the
//! same lowered `ExecutionPlan` executed by four unrelated engines —
//! one interpreting it in-process, one forking the multi-call binary
//! per node, one rendered to POSIX text, one serializing regions to
//! worker daemons — with OS semantics (FIFO blocking, SIGPIPE
//! teardown, wait status) in the loop for two of the four and wire
//! semantics (framed sockets, connection teardown) for a third.
//!
//! Both split strategies are exercised: the input-aware segment split
//! (`ParBSplit`) and the order-aware round-robin split (`r_split`,
//! tagged blocks restored by `pash-agg-reorder`), each at several
//! widths, plus concurrent independent regions (`max_inflight`).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;

use pash::core::compile::PashConfig;
use pash::coreutils::fs::MemFs;
use pash::{run, BackendOutput, ProcSettings, RunEnv};
use pash_bench::fixtures::{cached_fs, runtime_binaries};
use pash_bench::suites::{oneliners, unix50};
use pash_bench::Fig7Config;

/// What one backend produced for one script.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    stdout: Vec<u8>,
    status: i32,
    out_file: Option<Vec<u8>>,
}

/// How to run one differential comparison.
struct Setup<'a> {
    /// The parallel configuration under test.
    cfg: PashConfig,
    /// Bytes fed to the program's stdin.
    stdin: &'a [u8],
    /// `max_inflight` for the `threads` and `processes` executors
    /// (the shell backend's emitted script stays sequential — that
    /// asymmetry is exactly what the comparison checks).
    inflight: usize,
}

impl<'a> Setup<'a> {
    fn split(width: usize) -> Setup<'a> {
        Setup {
            cfg: cfg(width),
            stdin: b"",
            inflight: 1,
        }
    }

    fn round_robin(width: usize) -> Setup<'a> {
        Setup {
            cfg: PashConfig::round_robin(width),
            stdin: b"",
            inflight: 1,
        }
    }
}

fn cfg(width: usize) -> PashConfig {
    Fig7Config::ParBSplit.pash_config(width)
}

/// The binaries plus `/bin/sh`; `None` skips the suite (mirrors the
/// emitted-script tests' behaviour on exotic hosts).
fn harness() -> Option<(PathBuf, PathBuf)> {
    if !PathBuf::from("/bin/sh").exists() {
        return None;
    }
    runtime_binaries()
}

fn observe_threads(script: &str, fs: Arc<MemFs>, setup: &Setup, cfg: &PashConfig) -> Observed {
    let mut env = RunEnv {
        fs,
        stdin: setup.stdin.to_vec(),
        ..Default::default()
    };
    env.exec.max_inflight = setup.inflight;
    match run(script, cfg, "threads", &env) {
        Ok(BackendOutput::Execution(o)) => Observed {
            stdout: o.stdout,
            status: o.status,
            out_file: env.fs.read("out.txt").ok(),
        },
        other => panic!("threads produced {other:?} for `{script}`"),
    }
}

fn observe_processes(
    script: &str,
    fs: Arc<MemFs>,
    setup: &Setup,
    bins: &(PathBuf, PathBuf),
) -> Observed {
    let env = RunEnv {
        fs,
        stdin: setup.stdin.to_vec(),
        proc: ProcSettings {
            root: None,
            pashc: Some(bins.0.clone()),
            pash_rt: Some(bins.1.clone()),
            max_inflight: setup.inflight,
            ..Default::default()
        },
        ..Default::default()
    };
    match run(script, &setup.cfg, "processes", &env) {
        Ok(BackendOutput::Execution(o)) => Observed {
            stdout: o.stdout,
            status: o.status,
            out_file: env.fs.read("out.txt").ok(),
        },
        other => panic!("processes produced {other:?} for `{script}`"),
    }
}

/// A pair of in-process `pash-worker` serve loops on temp sockets —
/// multi-worker-on-localhost, so remote runs exercise real placement.
struct RemoteWorkers {
    sockets: Vec<PathBuf>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl RemoteWorkers {
    fn spawn(n: usize) -> RemoteWorkers {
        use pash::runtime::remote::{bind_worker, serve_worker};
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut sockets = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let socket = std::env::temp_dir().join(format!(
                "pash-diff-worker-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let listener = bind_worker(&socket).expect("bind worker");
            let s = socket.clone();
            handles.push(std::thread::spawn(move || {
                serve_worker(listener, &s, Arc::new(AtomicBool::new(false))).expect("serve");
            }));
            sockets.push(socket);
        }
        RemoteWorkers { sockets, handles }
    }
}

impl Drop for RemoteWorkers {
    fn drop(&mut self) {
        for s in &self.sockets {
            pash::runtime::remote::shutdown_worker(s);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn observe_remote(
    script: &str,
    fs: Arc<MemFs>,
    setup: &Setup,
    workers: &RemoteWorkers,
) -> Observed {
    let mut env = RunEnv {
        fs,
        stdin: setup.stdin.to_vec(),
        workers: workers.sockets.clone(),
        ..Default::default()
    };
    env.exec.max_inflight = setup.inflight;
    match run(script, &setup.cfg, "remote", &env) {
        Ok(BackendOutput::Execution(o)) => Observed {
            stdout: o.stdout,
            status: o.status,
            out_file: env.fs.read("out.txt").ok(),
        },
        other => panic!("remote produced {other:?} for `{script}`"),
    }
}

/// Materializes `fs` into `dir` (the `MemFs` → real-files bridge the
/// shell run needs).
fn materialize(fs: &MemFs, dir: &Path) {
    for p in fs.paths() {
        let target = dir.join(&p);
        if let Some(parent) = target.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(target, fs.read(&p).expect("template file")).expect("write input");
    }
}

fn observe_shell(
    script: &str,
    fs: Arc<MemFs>,
    setup: &Setup,
    bins: &(PathBuf, PathBuf),
) -> Observed {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let compiled = pash::compile(script, &setup.cfg).expect("compile");
    let dir = std::env::temp_dir().join(format!(
        "pash-diff-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    materialize(&fs, &dir);
    std::fs::write(dir.join("parallel.sh"), &compiled.script).expect("write script");
    let mut child = Command::new("/bin/sh")
        .arg("parallel.sh")
        .current_dir(&dir)
        .env("PASHC", &bins.0)
        .env("PASH_RT", &bins.1)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sh");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(setup.stdin)
        .ok();
    let out = child.wait_with_output().expect("wait sh");
    let status = out.status.code().unwrap_or_else(|| {
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            if let Some(sig) = out.status.signal() {
                return 128 + sig;
            }
        }
        1
    });
    let observed = Observed {
        stdout: out.stdout,
        status,
        out_file: std::fs::read(dir.join("out.txt")).ok(),
    };
    let _ = std::fs::remove_dir_all(&dir);
    observed
}

/// Runs `script` under all three backends and asserts pairwise
/// equality — including exit statuses, which the status fold keeps
/// identical to the sequential verdict at any width — plus agreement
/// with the sequential `threads` reference.
fn assert_backends_agree(
    label: &str,
    script: &str,
    make_fs: &dyn Fn() -> Arc<MemFs>,
    setup: &Setup,
    bins: &(PathBuf, PathBuf),
) {
    let width = setup.cfg.width;
    let seq_cfg = PashConfig {
        width: 1,
        per_region: Vec::new(),
        ..setup.cfg.clone()
    };
    let seq = observe_threads(script, make_fs(), setup, &seq_cfg);
    let t = observe_threads(script, make_fs(), setup, &setup.cfg);
    let p = observe_processes(script, make_fs(), setup, bins);
    let s = observe_shell(script, make_fs(), setup, bins);
    let workers = RemoteWorkers::spawn(2);
    let r = observe_remote(script, make_fs(), setup, &workers);
    drop(workers);
    assert_eq!(
        t, p,
        "{label}: threads vs processes diverged at width {width}\nscript: {script}"
    );
    assert_eq!(
        t, s,
        "{label}: threads vs shell diverged at width {width}\nscript: {script}"
    );
    assert_eq!(
        t, r,
        "{label}: threads vs remote diverged at width {width}\nscript: {script}"
    );
    // The sequential reference pins the data.
    assert_eq!(
        (&t.stdout, &t.out_file),
        (&seq.stdout, &seq.out_file),
        "{label}: parallel vs sequential data diverged at width {width}\nscript: {script}"
    );
    // The status fold makes the parallel status the sequential
    // verdict too, independent of width or split strategy.
    assert_eq!(
        t.status, seq.status,
        "{label}: parallel vs sequential status diverged at width {width}\nscript: {script}"
    );
}

#[test]
fn oneliners_differential_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    for bench in oneliners::all() {
        let make_fs = || {
            cached_fs(
                format!("differential/oneliners/{}/30000", bench.name),
                |fs| oneliners::setup_fs(&bench, 30_000, fs),
            )
        };
        assert_backends_agree(bench.name, &bench.script, &make_fs, &Setup::split(4), &bins);
    }
}

#[test]
fn oneliners_round_robin_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    for bench in oneliners::all() {
        let make_fs = || {
            cached_fs(
                format!("differential/oneliners/{}/10000", bench.name),
                |fs| oneliners::setup_fs(&bench, 10_000, fs),
            )
        };
        assert_backends_agree(
            bench.name,
            &bench.script,
            &make_fs,
            &Setup::round_robin(4),
            &bins,
        );
    }
}

#[test]
fn unix50_differential_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/unix50/20000".to_string(), |fs| {
            unix50::setup_fs(20_000, fs)
        })
    };
    for p in unix50::all() {
        assert_backends_agree(
            &format!("unix50 #{}", p.idx),
            p.script,
            &make_fs,
            &Setup::split(4),
            &bins,
        );
    }
}

#[test]
fn unix50_round_robin_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/unix50/8000".to_string(), |fs| {
            unix50::setup_fs(8_000, fs)
        })
    };
    for p in unix50::all() {
        assert_backends_agree(
            &format!("unix50-rr #{}", p.idx),
            p.script,
            &make_fs,
            &Setup::round_robin(4),
            &bins,
        );
    }
}

#[test]
fn width_sweep_both_split_strategies() {
    // Widths 2, 4, and 8 for both the segment split and `r_split`,
    // over pipelines covering the framed stateless path, the raw
    // commutative path (wc, plain and reversed sort — whole-line
    // comparisons are total orders, so their merges commute), the
    // framed class-P path (uniq/uniq -c via frame-merge), and the
    // segment fallback (keyed sort, whose ties break by partition).
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/sweep/10000".to_string(), |fs| {
            // Line-length-skewed corpus: the shape `r_split`'s
            // adaptive block sizing targets.
            let mut data = Vec::new();
            for i in 0..10_000u32 {
                match i % 5 {
                    0 => data.extend_from_slice(b"The quick brown fox\n"),
                    1 => data.extend_from_slice(format!("id {i} ok\n").as_bytes()),
                    2 => {
                        data.extend_from_slice(format!("row {i} ").as_bytes());
                        data.extend_from_slice("lorem ipsum dolor sit amet ".repeat(12).as_bytes());
                        data.push(b'\n');
                    }
                    3 => data.extend_from_slice(b"x\n"),
                    _ => data.extend_from_slice(format!("THE END {}\n", i % 97).as_bytes()),
                }
            }
            fs.add("in.txt", data);
        })
    };
    for (label, script) in [
        (
            "stateless-chain",
            "cat in.txt | tr A-Z a-z | grep the > out.txt",
        ),
        (
            "commutative-wc",
            "cat in.txt | grep -v qqq | wc -l > out.txt",
        ),
        (
            "raw-total-order-sort",
            "cat in.txt | tr A-Z a-z | sort > out.txt",
        ),
        (
            "raw-reverse-sort",
            "cat in.txt | tr A-Z a-z | sort -r > out.txt",
        ),
        ("framed-uniq", "cat in.txt | tr A-Z a-z | uniq > out.txt"),
        (
            "framed-uniq-count",
            "cat in.txt | tr A-Z a-z | sort | uniq -c > out.txt",
        ),
        (
            "segment-keyed-sort",
            "cat in.txt | grep -v qqq | sort -k 2 > out.txt",
        ),
    ] {
        for width in [2usize, 4, 8] {
            assert_backends_agree(
                &format!("{label}@{width}"),
                script,
                &make_fs,
                &Setup::split(width),
                &bins,
            );
            assert_backends_agree(
                &format!("{label}-rr@{width}"),
                script,
                &make_fs,
                &Setup::round_robin(width),
                &bins,
            );
        }
    }
}

#[test]
fn nlp_differential_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/nlp/24000".to_string(), |fs| {
            pash::workloads::nlp::setup_fs(24_000, fs)
        })
    };
    for bench in pash::workloads::nlp::scripts() {
        assert_backends_agree(bench.name, bench.script, &make_fs, &Setup::split(4), &bins);
        assert_backends_agree(
            &format!("{}-rr", bench.name),
            bench.script,
            &make_fs,
            &Setup::round_robin(4),
            &bins,
        );
    }
}

/// The optimizer only re-shapes plans; it must never change bytes. For
/// a sweep of scripts × synthetic pricers (each a different stand-in
/// for a measured profile, from "serial always wins" to "wider always
/// wins" to byte-rate mixes), the adaptively chosen plan must match
/// the width-1 sequential run on both real executors and the emitted
/// script.
#[test]
fn optimizer_choice_is_byte_identical_to_sequential() {
    use pash::core::optimize::{optimize, CandidatePricer, OptimizerConfig};
    use pash::core::plan::RegionPlan;

    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };

    /// Prices a region from its own dump bytes — deterministic,
    /// seed-varied, and intentionally arbitrary: whatever shape it
    /// prefers, the output contract must hold.
    struct HashPricer {
        seed: u64,
        favor_wide: bool,
    }
    impl CandidatePricer for HashPricer {
        fn price_region(&self, r: &RegionPlan) -> f64 {
            let h = r.fingerprint() ^ self.seed;
            let jitter = 1.0 + (h % 1000) as f64 / 1000.0;
            if self.favor_wide {
                jitter / (1.0 + r.nodes.len() as f64)
            } else {
                jitter * (1.0 + r.nodes.len() as f64)
            }
        }
    }

    let make_fs = || {
        cached_fs("differential/optimizer/12000".to_string(), |fs| {
            pash::workloads::nlp::setup_fs(12_000, fs)
        })
    };
    let scripts: Vec<String> = pash::workloads::nlp::scripts()
        .into_iter()
        .take(6)
        .map(|s| s.script.to_string())
        .chain(std::iter::once(
            "cat in.txt | tr A-Z a-z | sort | uniq -c | sort -rn > out.txt".to_string(),
        ))
        .collect();
    for (i, script) in scripts.iter().enumerate() {
        for favor_wide in [false, true] {
            let pricer = HashPricer {
                seed: 0x9e37_79b9 * (i as u64 + 1),
                favor_wide,
            };
            let opt = optimize(
                script,
                &PashConfig::default(),
                &pricer,
                &OptimizerConfig {
                    max_width: 8,
                    ..Default::default()
                },
            )
            .expect("optimize");
            let setup = Setup {
                cfg: opt.config.clone(),
                stdin: b"",
                inflight: 1,
            };
            assert_backends_agree(
                &format!("optimizer[{i}]-wide={favor_wide}-w{}", opt.chosen_width()),
                script,
                &make_fs,
                &setup,
                &bins,
            );
        }
    }
}

#[test]
fn statuses_and_guards_agree_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/status/basic".to_string(), |fs| {
            fs.add(
                "in.txt",
                b"the quick brown fox\njumps over the lazy dog\n".to_vec(),
            );
        })
    };
    // A failing final region (grep finds nothing → status 1) and a
    // head early-exit teardown, at parallel width.
    for (label, script) in [
        ("grep-miss", "grep zzz in.txt > out.txt"),
        (
            "head-early-exit",
            "cat in.txt | sort -rn | head -n 1 > out.txt",
        ),
    ] {
        assert_backends_agree(label, script, &make_fs, &Setup::split(4), &bins);
    }
    // Guard chains at parallel widths: the status fold over the
    // region's real commands keeps a guarded `grep` miss gating the
    // next step exactly as the sequential script would, for both
    // split strategies.
    for (label, script) in [
        (
            "guard-or",
            "grep zzz in.txt > miss.txt || cat in.txt > out.txt",
        ),
        (
            "guard-and",
            "grep the in.txt > out.txt && cat out.txt | wc -l",
        ),
        (
            "guard-and-skipped",
            "grep zzz in.txt > miss.txt && cat in.txt > out.txt",
        ),
    ] {
        for setup in [Setup::split(1), Setup::split(4), Setup::round_robin(4)] {
            assert_backends_agree(
                &format!("{label}@{}", setup.cfg.width),
                script,
                &make_fs,
                &setup,
                &bins,
            );
        }
    }
}

#[test]
fn parallel_regions_agree_across_backends() {
    // Independent regions overlap under `max_inflight > 1`; results
    // must match the strictly sequential plan and the (sequential)
    // emitted script.
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/inflight/basic".to_string(), |fs| {
            fs.add(
                "in.txt",
                b"the quick brown fox\njumps over the lazy dog\nthe end\n".to_vec(),
            );
        })
    };
    let script = "grep the in.txt > a.txt\ngrep -c o in.txt > b.txt\ngrep lazy in.txt > out.txt";
    for inflight in [1usize, 4] {
        for mut setup in [Setup::split(2), Setup::round_robin(2)] {
            setup.inflight = inflight;
            assert_backends_agree(
                &format!("inflight-{inflight}"),
                script,
                &make_fs,
                &setup,
                &bins,
            );
        }
    }
}

#[test]
fn stdin_feeds_all_backends_identically() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || cached_fs("differential/stdin/empty".to_string(), |_| {});
    let stdin_setup = |mut setup: Setup<'static>| {
        setup.stdin = b"delta\nalpha\ncharlie\n";
        setup
    };
    for setup in [
        stdin_setup(Setup::split(2)),
        stdin_setup(Setup::round_robin(2)),
    ] {
        assert_backends_agree(
            "stdin-pipeline",
            "tr a-z A-Z | sort",
            &make_fs,
            &setup,
            &bins,
        );
    }
    // The stdin consumer is the *second* region: the emitted script
    // keeps real stdin on a saved fd across regions, so executors
    // must not hand the bytes to a region that has no stdin edge.
    let make_fs = || {
        cached_fs("differential/stdin/later-region".to_string(), |fs| {
            fs.add("in.txt", b"the quick brown fox\n".to_vec());
        })
    };
    let mut setup = Setup::split(2);
    setup.stdin = b"abc\n";
    assert_backends_agree(
        "stdin-second-region",
        "grep the in.txt > out.txt && tr a-z A-Z",
        &make_fs,
        &setup,
        &bins,
    );
}
