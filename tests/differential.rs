//! Cross-backend differential suite: every corpus script must produce
//! byte-identical stdout, byte-identical output files, and the same
//! exit status under the `shell` backend (emitted script on a real
//! `/bin/sh`), the `threads` backend (in-process), and the
//! `processes` backend (real children over FIFOs).
//!
//! This is the strongest fidelity check the reproduction has: the
//! same lowered `ExecutionPlan` executed by three unrelated engines —
//! one interpreting it in-process, one forking the multi-call binary
//! per node, one rendered to POSIX text — with OS semantics (FIFO
//! blocking, SIGPIPE teardown, wait status) in the loop for two of
//! the three.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;

use pash::core::compile::PashConfig;
use pash::coreutils::fs::MemFs;
use pash::{run, BackendOutput, ProcSettings, RunEnv};
use pash_bench::fixtures::{cached_fs, runtime_binaries};
use pash_bench::suites::{oneliners, unix50};
use pash_bench::Fig7Config;

/// What one backend produced for one script.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    stdout: Vec<u8>,
    status: i32,
    out_file: Option<Vec<u8>>,
}

fn cfg(width: usize) -> PashConfig {
    Fig7Config::ParBSplit.pash_config(width)
}

/// The binaries plus `/bin/sh`; `None` skips the suite (mirrors the
/// emitted-script tests' behaviour on exotic hosts).
fn harness() -> Option<(PathBuf, PathBuf)> {
    if !PathBuf::from("/bin/sh").exists() {
        return None;
    }
    runtime_binaries()
}

fn observe_threads(script: &str, fs: Arc<MemFs>, width: usize, stdin: &[u8]) -> Observed {
    let env = RunEnv {
        fs,
        stdin: stdin.to_vec(),
        ..Default::default()
    };
    match run(script, &cfg(width), "threads", &env) {
        Ok(BackendOutput::Execution(o)) => Observed {
            stdout: o.stdout,
            status: o.status,
            out_file: env.fs.read("out.txt").ok(),
        },
        other => panic!("threads produced {other:?} for `{script}`"),
    }
}

fn observe_processes(
    script: &str,
    fs: Arc<MemFs>,
    width: usize,
    stdin: &[u8],
    bins: &(PathBuf, PathBuf),
) -> Observed {
    let env = RunEnv {
        fs,
        stdin: stdin.to_vec(),
        proc: ProcSettings {
            root: None,
            pashc: Some(bins.0.clone()),
            pash_rt: Some(bins.1.clone()),
        },
        ..Default::default()
    };
    match run(script, &cfg(width), "processes", &env) {
        Ok(BackendOutput::Execution(o)) => Observed {
            stdout: o.stdout,
            status: o.status,
            out_file: env.fs.read("out.txt").ok(),
        },
        other => panic!("processes produced {other:?} for `{script}`"),
    }
}

/// Materializes `fs` into `dir` (the `MemFs` → real-files bridge the
/// shell run needs).
fn materialize(fs: &MemFs, dir: &Path) {
    for p in fs.paths() {
        let target = dir.join(&p);
        if let Some(parent) = target.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(target, fs.read(&p).expect("template file")).expect("write input");
    }
}

fn observe_shell(
    script: &str,
    fs: Arc<MemFs>,
    width: usize,
    stdin: &[u8],
    bins: &(PathBuf, PathBuf),
) -> Observed {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let compiled = pash::compile(script, &cfg(width)).expect("compile");
    let dir = std::env::temp_dir().join(format!(
        "pash-diff-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    materialize(&fs, &dir);
    std::fs::write(dir.join("parallel.sh"), &compiled.script).expect("write script");
    let mut child = Command::new("/bin/sh")
        .arg("parallel.sh")
        .current_dir(&dir)
        .env("PASHC", &bins.0)
        .env("PASH_RT", &bins.1)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn sh");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin)
        .ok();
    let out = child.wait_with_output().expect("wait sh");
    let status = out.status.code().unwrap_or_else(|| {
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            if let Some(sig) = out.status.signal() {
                return 128 + sig;
            }
        }
        1
    });
    let observed = Observed {
        stdout: out.stdout,
        status,
        out_file: std::fs::read(dir.join("out.txt")).ok(),
    };
    let _ = std::fs::remove_dir_all(&dir);
    observed
}

/// Runs `script` under all three backends at `width` and asserts
/// pairwise equality (plus agreement with the sequential `threads`
/// reference on data, where statuses are also expected to match).
fn assert_backends_agree(
    label: &str,
    script: &str,
    make_fs: &dyn Fn() -> Arc<MemFs>,
    width: usize,
    stdin: &[u8],
    bins: &(PathBuf, PathBuf),
) {
    let seq = observe_threads(script, make_fs(), 1, stdin);
    let t = observe_threads(script, make_fs(), width, stdin);
    let p = observe_processes(script, make_fs(), width, stdin, bins);
    let s = observe_shell(script, make_fs(), width, stdin, bins);
    assert_eq!(
        t, p,
        "{label}: threads vs processes diverged at width {width}\nscript: {script}"
    );
    assert_eq!(
        t, s,
        "{label}: threads vs shell diverged at width {width}\nscript: {script}"
    );
    // The sequential reference pins the *data*; statuses are only
    // comparable at equal width (parallelization replaces a region's
    // output producer — e.g. a missing-match `grep` reports 1, but
    // the aggregator over its copies reports 0 — identically in all
    // three backends, which the pairwise asserts above pin down).
    assert_eq!(
        (&t.stdout, &t.out_file),
        (&seq.stdout, &seq.out_file),
        "{label}: parallel vs sequential data diverged at width {width}\nscript: {script}"
    );
}

#[test]
fn oneliners_differential_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    for bench in oneliners::all() {
        let make_fs = || {
            cached_fs(
                format!("differential/oneliners/{}/30000", bench.name),
                |fs| oneliners::setup_fs(&bench, 30_000, fs),
            )
        };
        assert_backends_agree(bench.name, &bench.script, &make_fs, 4, b"", &bins);
    }
}

#[test]
fn unix50_differential_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/unix50/20000".to_string(), |fs| {
            unix50::setup_fs(20_000, fs)
        })
    };
    for p in unix50::all() {
        assert_backends_agree(
            &format!("unix50 #{}", p.idx),
            p.script,
            &make_fs,
            4,
            b"",
            &bins,
        );
    }
}

#[test]
fn statuses_and_guards_agree_across_backends() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || {
        cached_fs("differential/status/basic".to_string(), |fs| {
            fs.add(
                "in.txt",
                b"the quick brown fox\njumps over the lazy dog\n".to_vec(),
            );
        })
    };
    // A failing final region (grep finds nothing → status 1) and a
    // head early-exit teardown, at parallel width.
    for (label, script) in [
        ("grep-miss", "grep zzz in.txt > out.txt"),
        (
            "head-early-exit",
            "cat in.txt | sort -rn | head -n 1 > out.txt",
        ),
    ] {
        assert_backends_agree(label, script, &make_fs, 4, b"", &bins);
    }
    // Guard chains run at width 1: parallelization swaps a region's
    // output producer for an aggregator, so a guarded `grep` miss
    // stops gating the next step — identically in all three backends,
    // but differently from the sequential plan (ROADMAP: status
    // plumbing through aggregation trees).
    for (label, script) in [
        (
            "guard-or",
            "grep zzz in.txt > miss.txt || cat in.txt > out.txt",
        ),
        ("guard-and", "grep the in.txt > out.txt && wc -l out.txt"),
        (
            "guard-and-skipped",
            "grep zzz in.txt > miss.txt && cat in.txt > out.txt",
        ),
    ] {
        assert_backends_agree(label, script, &make_fs, 1, b"", &bins);
    }
}

#[test]
fn stdin_feeds_all_backends_identically() {
    let Some(bins) = harness() else {
        eprintln!("skipping: no /bin/sh or binaries unavailable");
        return;
    };
    let make_fs = || cached_fs("differential/stdin/empty".to_string(), |_| {});
    assert_backends_agree(
        "stdin-pipeline",
        "tr a-z A-Z | sort",
        &make_fs,
        2,
        b"delta\nalpha\ncharlie\n",
        &bins,
    );
    // The stdin consumer is the *second* region: the emitted script
    // keeps real stdin on a saved fd across regions, so executors
    // must not hand the bytes to a region that has no stdin edge.
    let make_fs = || {
        cached_fs("differential/stdin/later-region".to_string(), |fs| {
            fs.add("in.txt", b"the quick brown fox\n".to_vec());
        })
    };
    assert_backends_agree(
        "stdin-second-region",
        "grep the in.txt > out.txt && tr a-z A-Z",
        &make_fs,
        2,
        b"abc\n",
        &bins,
    );
}
