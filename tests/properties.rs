//! Property-based end-to-end tests: the laws of §4.2 hold against the
//! *real* command implementations.
//!
//! * the stateless law `f(x·x') = f(x)·f(x')` for every S-annotated
//!   command, at random split points;
//! * the map/aggregate law `f(x·x') = agg(m(x)·m(x'))` for every
//!   P-annotated command with an aggregator;
//! * whole-pipeline equivalence: random pipelines of annotated
//!   commands produce identical sequential and parallel output.

use std::sync::Arc;

use proptest::prelude::*;

use pash::core::compile::PashConfig;
use pash::coreutils::fs::MemFs;
use pash::coreutils::run_command;
use pash::runtime::exec::{run_script, ExecConfig};
use pash_bench::fixtures::registry;

/// Random line-oriented inputs: words, numbers, punctuation, repeats.
fn arb_input() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            "[a-z]{1,8}",
            "[A-Z][a-z]{0,6}",
            "[0-9]{1,4}",
            Just("same".to_string()),
            Just("".to_string()),
        ],
        0..40,
    )
    .prop_map(|lines| {
        let mut out = Vec::new();
        for l in lines {
            out.extend_from_slice(l.as_bytes());
            out.push(b'\n');
        }
        out
    })
}

/// Splits at a line boundary closest to `frac` of the way in.
fn split_at_line(data: &[u8], frac: f64) -> (Vec<u8>, Vec<u8>) {
    let target = (data.len() as f64 * frac) as usize;
    let cut = data[..target.min(data.len())]
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    (data[..cut].to_vec(), data[cut..].to_vec())
}

fn run(argv: &[&str], input: &[u8]) -> Vec<u8> {
    run_command(registry(), Arc::new(MemFs::new()), argv, input)
        .expect("command runs")
        .stdout
}

/// Stateless commands under test (each an S-annotated invocation).
const STATELESS: &[&[&str]] = &[
    &["tr", "A-Z", "a-z"],
    &["grep", "a"],
    &["grep", "-v", "e"],
    &["cut", "-d", " ", "-f", "1"],
    &["sed", "s/a/X/g"],
    &["rev"],
    &["word-stem"],
    &["fold", "-w", "7"],
];

/// P-commands with their aggregators: `(map argv, agg argv)`.
fn pure_pairs() -> Vec<(Vec<String>, Vec<String>)> {
    let cases: Vec<Vec<&str>> = vec![
        vec!["sort"],
        vec!["sort", "-rn"],
        vec!["sort", "-u"],
        vec!["sort", "-k", "2", "-n"],
        vec!["uniq"],
        vec!["uniq", "-c"],
        vec!["wc", "-lw"],
        vec!["grep", "-c", "a"],
        vec!["head", "-n", "5"],
        vec!["tac"],
    ];
    cases
        .into_iter()
        .map(|argv| {
            let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            let agg = pash::core::annot::stdlib::aggregator_for(&argv)
                .unwrap_or_else(|| panic!("no aggregator for {argv:?}"));
            (argv, agg)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stateless_law(input in arb_input(), frac in 0.0f64..1.0) {
        let (x, y) = split_at_line(&input, frac);
        for argv in STATELESS {
            // sort of: f(x·y) == f(x)·f(y).
            let whole = run(argv, &input);
            let mut parts = run(argv, &x);
            parts.extend(run(argv, &y));
            prop_assert_eq!(
                &whole,
                &parts,
                "stateless law violated for {:?}",
                argv
            );
        }
    }

    #[test]
    fn map_aggregate_law(input in arb_input(), frac in 0.0f64..1.0) {
        // uniq's chunks must themselves be uniq-able: pre-sort.
        let sorted = run(&["sort"], &input);
        let (x, y) = split_at_line(&sorted, frac);
        for (map_argv, agg_argv) in pure_pairs() {
            let map_ref: Vec<&str> = map_argv.iter().map(|s| s.as_str()).collect();
            let whole = run(&map_ref, &sorted);
            let part_a = run(&map_ref, &x);
            let part_b = run(&map_ref, &y);
            let mut out = Vec::new();
            let inputs: Vec<pash::runtime::agg::AggInput> = vec![
                Box::new(std::io::Cursor::new(part_a)),
                Box::new(std::io::Cursor::new(part_b)),
            ];
            pash::runtime::agg::run_aggregator(
                &agg_argv,
                inputs,
                &mut out,
                registry(),
                Arc::new(MemFs::new()),
            )
            .expect("aggregator runs");
            prop_assert_eq!(
                &whole,
                &out,
                "map/aggregate law violated for {:?} via {:?}",
                map_argv,
                agg_argv
            );
        }
    }

    #[test]
    fn random_pipelines_parallel_equals_sequential(
        input in arb_input(),
        stages in proptest::collection::vec(0usize..7, 1..4),
        width in 2usize..6,
    ) {
        // A pool of composable stages; any chain of them is a valid
        // pipeline over text.
        const POOL: &[&str] = &[
            "tr A-Z a-z",
            "grep a",
            "sort",
            "uniq -c",
            "sed 's/e/E/'",
            "sort -rn",
            "rev",
        ];
        let mut script = String::from("cat in.txt");
        for s in &stages {
            script.push_str(" | ");
            script.push_str(POOL[*s]);
        }
        script.push_str(" > out.txt");
        let run_width = |w: usize| {
            let fs = Arc::new(MemFs::new());
            fs.add("in.txt", input.clone());
            run_script(
                &script,
                &PashConfig { width: w, ..Default::default() },
                registry(),
                fs.clone(),
                Vec::new(),
                &ExecConfig::default(),
            )
            .expect("run");
            fs.read("out.txt").expect("output")
        };
        prop_assert_eq!(run_width(1), run_width(width), "script: {}", script);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn squeeze_is_stateless_on_alpha_leading_lines(
        lines in proptest::collection::vec("[a-z][a-z ,.]{0,12}", 1..30),
        frac in 0.0f64..1.0,
    ) {
        // `tr -cs A-Za-z '\n'` squeezes runs *across* line boundaries,
        // so its S classification (paper §3.1) is sound only when no
        // chunk starts inside a squeezed run — i.e. when every line
        // starts with an alphabetic character. Real prose does; the
        // workload generators guarantee it; this property pins it.
        let input: Vec<u8> = lines
            .iter()
            .flat_map(|l| {
                let mut v = l.as_bytes().to_vec();
                v.push(b'\n');
                v
            })
            .collect();
        let (x, y) = split_at_line(&input, frac);
        let argv = &["tr", "-cs", "A-Za-z", "\\n"];
        let whole = run(argv, &input);
        let mut parts = run(argv, &x);
        parts.extend(run(argv, &y));
        prop_assert_eq!(whole, parts);
    }
}

#[test]
fn squeeze_boundary_counterexample() {
    // The flip side, found by property testing this reproduction: a
    // blank line at a chunk boundary breaks the stateless law for
    // `tr -s`. The annotation (taken from the paper) is unsound for
    // such inputs; DESIGN.md records this caveat.
    let input = b"a\n\nb\n".to_vec();
    let argv = &["tr", "-cs", "A-Za-z", "\\n"];
    let whole = run(argv, &input);
    let (x, y) = split_at_line(&input, 0.5);
    let mut parts = run(argv, &x);
    parts.extend(run(argv, &y));
    assert_ne!(whole, parts, "expected the documented boundary effect");
}

#[test]
fn non_parallelizable_law_counterexample() {
    // Sanity check that the laws are not vacuous: sha1sum genuinely
    // violates the stateless law (which is why it is class N).
    let input = b"hello\nworld\n".to_vec();
    let (x, y) = split_at_line(&input, 0.5);
    let whole = run(&["sha1sum"], &input);
    let mut parts = run(&["sha1sum"], &x);
    parts.extend(run(&["sha1sum"], &y));
    assert_ne!(whole, parts);
}
