//! End-to-end correctness: for every benchmark script in the suite,
//! parallel execution must produce byte-identical results to
//! sequential execution — the property PaSh's transformations promise
//! (§4.2) and the paper verifies over multi-GB inputs ("PaSh's
//! results ... are identical to the sequential for all benchmarks").

use std::sync::{Arc, OnceLock};

use pash::core::compile::PashConfig;
use pash::core::dfg::{AggTreeShape, EagerPolicy, SplitPolicy};
use pash::coreutils::fs::MemFs;
use pash::runtime::exec::{run_script, ExecConfig};
use pash_bench::fixtures::{cached_fs, registry};
use pash_bench::suites::{oneliners, unix50, usecases};
use pash_bench::Fig7Config;

/// Runs a script and returns `(stdout, out.txt contents if any)`.
///
/// Corpus filesystems come from the shared
/// [`pash_bench::fixtures::cached_fs`] template cache (regeneration
/// used to dominate this suite's wall clock).
fn run(
    script: &str,
    cfg: &PashConfig,
    fs: Arc<MemFs>,
    exec: &ExecConfig,
) -> (Vec<u8>, Option<Vec<u8>>) {
    let out = run_script(script, cfg, registry(), fs.clone(), Vec::new(), exec)
        .unwrap_or_else(|e| panic!("execution failed: {e}\nscript: {script}"));
    let file = fs.read("out.txt").ok();
    (out.stdout, file)
}

#[test]
fn oneliners_parallel_equals_sequential() {
    for bench in oneliners::all() {
        let make_fs = || {
            cached_fs(format!("oneliners/{}/60000", bench.name), |fs| {
                oneliners::setup_fs(&bench, 60_000, fs)
            })
        };
        let seq = run(
            &bench.script,
            &Fig7Config::Parallel.pash_config(1),
            make_fs(),
            &ExecConfig::default(),
        );
        for config in Fig7Config::all() {
            for width in [2usize, 3, 8] {
                let par = run(
                    &bench.script,
                    &config.pash_config(width),
                    make_fs(),
                    &ExecConfig::default(),
                );
                assert_eq!(
                    seq,
                    par,
                    "{} diverged at width {width} under {}",
                    bench.name,
                    config.label()
                );
            }
        }
    }
}

#[test]
fn unix50_parallel_equals_sequential() {
    let make_fs = || {
        cached_fs("unix50/40000".to_string(), |fs| {
            unix50::setup_fs(40_000, fs)
        })
    };
    for p in unix50::all() {
        let seq = run(
            p.script,
            &Fig7Config::Parallel.pash_config(1),
            make_fs(),
            &ExecConfig::default(),
        );
        let par = run(
            p.script,
            &Fig7Config::ParBSplit.pash_config(16),
            make_fs(),
            &ExecConfig::default(),
        );
        assert_eq!(seq, par, "unix50 pipeline {} diverged at 16x", p.idx);
    }
}

#[test]
fn noaa_matches_ground_truth_at_all_widths() {
    let spec = pash::workloads::NoaaSpec {
        years: 2015..=2017,
        files_per_year: 3,
        records_per_file: 120,
        seed: 9,
    };
    let script = usecases::noaa_script(2015..=2017);
    // The mirror is expensive to generate; cache it with its ground
    // truths and snapshot per width.
    static NOAA: OnceLock<(MemFs, Vec<(u32, u32)>)> = OnceLock::new();
    for width in [1usize, 2, 10] {
        let (template, truths) = NOAA.get_or_init(|| {
            let fs = MemFs::new();
            let truths = usecases::setup_noaa(&fs, &spec);
            (fs, truths)
        });
        let fs = Arc::new(template.snapshot());
        let (stdout, _) = run(
            &script,
            &Fig7Config::ParBSplit.pash_config(width),
            fs,
            &ExecConfig::default(),
        );
        let text = String::from_utf8(stdout).expect("utf8 output");
        for (year, max) in truths {
            assert!(
                text.contains(&format!("Maximum temperature for {year} is: {max:04}")),
                "width {width}: wrong maximum for {year}\n{text}"
            );
        }
    }
}

#[test]
fn wiki_index_identical_across_widths() {
    let script = usecases::wiki_script();
    let spec = pash::workloads::WikiSpec {
        pages: 15,
        bytes_per_page: 1500,
        seed: 4,
    };
    let make_fs = || cached_fs("wiki/15".to_string(), |fs| usecases::setup_wiki(fs, &spec));
    let reference = {
        let fs = make_fs();
        run(
            &script,
            &Fig7Config::Parallel.pash_config(1),
            fs.clone(),
            &ExecConfig::default(),
        );
        fs.read("index.txt").expect("index")
    };
    for width in [4usize, 16] {
        let fs = make_fs();
        run(
            &script,
            &Fig7Config::ParBSplit.pash_config(width),
            fs.clone(),
            &ExecConfig::default(),
        );
        assert_eq!(
            fs.read("index.txt").expect("index"),
            reference,
            "wiki index diverged at width {width}"
        );
    }
}

#[test]
fn flat_aggregation_tree_also_correct() {
    let bench = oneliners::by_name("Sort").expect("Sort exists");
    let fs = cached_fs("oneliners/Sort/50000".to_string(), |fs| {
        oneliners::setup_fs(&bench, 50_000, fs)
    });
    let seq = run(
        &bench.script,
        &Fig7Config::Parallel.pash_config(1),
        fs.clone(),
        &ExecConfig::default(),
    );
    let cfg = PashConfig {
        width: 8,
        agg_tree: AggTreeShape::Flat,
        ..Default::default()
    };
    let par = run(&bench.script, &cfg, fs, &ExecConfig::default());
    assert_eq!(seq, par);
}

#[test]
fn correctness_resilient_to_tiny_pipes() {
    // 48-byte pipes force maximal blocking and teardown interleavings.
    let bench = oneliners::by_name("Top-n").expect("Top-n exists");
    let fs = cached_fs("oneliners/Top-n/30000".to_string(), |fs| {
        oneliners::setup_fs(&bench, 30_000, fs)
    });
    let exec = ExecConfig {
        pipe_capacity: 48,
        ..Default::default()
    };
    let seq = run(
        &bench.script,
        &Fig7Config::Parallel.pash_config(1),
        fs.clone(),
        &exec,
    );
    let par = run(
        &bench.script,
        &Fig7Config::ParSplit.pash_config(4),
        fs,
        &exec,
    );
    assert_eq!(seq, par);
}

#[test]
fn conservative_configs_match_too() {
    // Eager off + splits off: the "No Eager" ablation still preserves
    // semantics (it is only slower).
    let bench = oneliners::by_name("Spell").expect("Spell exists");
    let fs = cached_fs("oneliners/Spell/40000".to_string(), |fs| {
        oneliners::setup_fs(&bench, 40_000, fs)
    });
    let seq = run(
        &bench.script,
        &Fig7Config::Parallel.pash_config(1),
        fs.clone(),
        &ExecConfig::default(),
    );
    let cfg = PashConfig {
        width: 6,
        eager: EagerPolicy::Off,
        split: SplitPolicy::Off,
        ..Default::default()
    };
    let par = run(&bench.script, &cfg, fs, &ExecConfig::default());
    assert_eq!(seq, par);
}
