//! Differential fault sweep: every injected fault kind, on all three
//! execution backends (threads, processes, remote workers over
//! sockets), at several widths, must leave the program's observable
//! behaviour — stdout bytes, output-file bytes, exit status —
//! identical to an undisturbed width-1 sequential run.
//!
//! That is the supervisor's contract: faults may cost retries,
//! deadline kills, or a sequential re-execution, but they can never
//! corrupt output. The dedicated cases below additionally pin *which*
//! recovery path fired, via the supervisor counters.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pash::core::compile::PashConfig;
use pash::coreutils::fs::MemFs;
use pash::runtime::fault::{FaultKind, FaultPlan};
use pash::runtime::supervise::{SupervisorCounters, SupervisorSettings};
use pash::{run, BackendOutput, ProcSettings, RunEnv};
use pash_bench::fixtures::runtime_binaries;

/// Two regions: one redirected to a file, one on stdout, so the sweep
/// checks both observable channels. Every stage is replayable, so the
/// supervisor may retry freely.
const SCRIPT: &str = "cat in.txt | tr A-Z a-z | grep the > out.txt\n\
                      cat in.txt | tr a-z A-Z | grep THE";

/// A deterministic corpus with plenty of `the` matches. Big enough
/// (~1 MiB) that the round-robin split deals many blocks to *every*
/// worker at width 8 — a fault targeting any worker then lands on a
/// live stream, not an idle one (the splitter's smallest adaptive
/// block is 16 KiB).
fn corpus() -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 20);
    let mut i = 0u32;
    while out.len() < 1 << 20 {
        if i % 3 == 0 {
            out.extend_from_slice(format!("line {i} over the lazy dog\n").as_bytes());
        } else {
            out.extend_from_slice(format!("Record {i} without a match {i:04x}\n").as_bytes());
        }
        i += 1;
    }
    out
}

fn fresh_fs() -> Arc<MemFs> {
    let fs = Arc::new(MemFs::new());
    fs.add("in.txt", corpus());
    fs
}

#[derive(Debug, PartialEq, Eq)]
struct Observed {
    stdout: Vec<u8>,
    status: i32,
    out_file: Option<Vec<u8>>,
}

/// The round-robin config: framed edges exist, so stream faults
/// (truncate / corrupt) have eligible sites.
fn cfg(width: usize) -> PashConfig {
    PashConfig::round_robin(width)
}

/// The fault-free width-1 run every faulted run must match.
fn reference() -> Observed {
    let (obs, _) = run_threads(1, SupervisorSettings::default());
    obs
}

fn observe(env: &RunEnv, out: BackendOutput, what: &str) -> Observed {
    match out {
        BackendOutput::Execution(o) => Observed {
            stdout: o.stdout,
            status: o.status,
            out_file: env.fs.read("out.txt").ok(),
        },
        other => panic!("{what} produced {other:?}"),
    }
}

fn run_threads(width: usize, sup: SupervisorSettings) -> (Observed, Arc<SupervisorCounters>) {
    let counters = sup.counters.clone();
    let mut env = RunEnv {
        fs: fresh_fs(),
        ..Default::default()
    };
    env.exec.supervisor = sup;
    let out = run(SCRIPT, &cfg(width), "threads", &env).expect("threads run");
    (observe(&env, out, "threads"), counters)
}

/// `None` when the multicall binaries cannot be built on this host.
fn run_processes(
    width: usize,
    sup: SupervisorSettings,
) -> Option<(Observed, Arc<SupervisorCounters>)> {
    let bins = runtime_binaries()?;
    let counters = sup.counters.clone();
    let env = RunEnv {
        fs: fresh_fs(),
        proc: ProcSettings {
            pashc: Some(bins.0),
            pash_rt: Some(bins.1),
            supervisor: sup,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = run(SCRIPT, &cfg(width), "processes", &env).expect("processes run");
    Some((observe(&env, out, "processes"), counters))
}

/// Two in-process `pash-worker` serve loops, so the remote sweep
/// exercises real placement (and rerouting) on localhost.
struct RemoteWorkers {
    sockets: Vec<PathBuf>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl RemoteWorkers {
    fn spawn(n: usize) -> RemoteWorkers {
        use pash::runtime::remote::{bind_worker, serve_worker};
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut sockets = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..n {
            let socket = std::env::temp_dir().join(format!(
                "pash-fault-worker-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let listener = bind_worker(&socket).expect("bind worker");
            let s = socket.clone();
            handles.push(std::thread::spawn(move || {
                serve_worker(listener, &s, Arc::new(AtomicBool::new(false))).expect("serve");
            }));
            sockets.push(socket);
        }
        RemoteWorkers { sockets, handles }
    }
}

impl Drop for RemoteWorkers {
    fn drop(&mut self) {
        for s in &self.sockets {
            pash::runtime::remote::shutdown_worker(s);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn run_remote(
    width: usize,
    sup: SupervisorSettings,
    workers: &RemoteWorkers,
) -> (Observed, Arc<SupervisorCounters>) {
    let counters = sup.counters.clone();
    let mut env = RunEnv {
        fs: fresh_fs(),
        workers: workers.sockets.clone(),
        ..Default::default()
    };
    env.exec.supervisor = sup;
    let out = run(SCRIPT, &cfg(width), "remote", &env).expect("remote run");
    (observe(&env, out, "remote"), counters)
}

/// One deterministic seed per (kind, width) cell.
fn seed(kind: FaultKind, width: usize) -> u64 {
    FaultKind::ALL.iter().position(|&k| k == kind).unwrap() as u64 * 131 + width as u64 * 7 + 1
}

fn single_shot(kind: FaultKind, width: usize) -> SupervisorSettings {
    SupervisorSettings {
        fault: Some(FaultPlan::new(kind, seed(kind, width))),
        ..Default::default()
    }
}

#[test]
fn fault_sweep_threads_is_byte_identical_to_sequential() {
    let expect = reference();
    let mut injected = 0u64;
    for kind in FaultKind::ALL {
        for width in [2usize, 4, 8] {
            let (got, counters) = run_threads(width, single_shot(kind, width));
            assert_eq!(
                got,
                expect,
                "threads diverged under {} at width {width}",
                kind.name()
            );
            injected += counters.injected();
        }
    }
    assert!(
        injected >= FaultKind::ALL.len() as u64,
        "sweep armed only {injected} faults — injection plane inert"
    );
}

#[test]
fn fault_sweep_processes_is_byte_identical_to_sequential() {
    if runtime_binaries().is_none() {
        eprintln!("skipping: multicall binaries not built");
        return;
    }
    let expect = reference();
    let mut injected = 0u64;
    for kind in FaultKind::ALL {
        for width in [2usize, 4, 8] {
            let (got, counters) =
                run_processes(width, single_shot(kind, width)).expect("binaries present");
            assert_eq!(
                got,
                expect,
                "processes diverged under {} at width {width}",
                kind.name()
            );
            injected += counters.injected();
        }
    }
    assert!(
        injected >= FaultKind::ALL.len() as u64,
        "sweep armed only {injected} faults — injection plane inert"
    );
}

#[test]
fn fault_sweep_remote_is_byte_identical_to_sequential() {
    let workers = RemoteWorkers::spawn(2);
    let expect = reference();
    let mut injected = 0u64;
    for kind in FaultKind::ALL {
        for width in [2usize, 4, 8] {
            let (got, counters) = run_remote(width, single_shot(kind, width), &workers);
            assert_eq!(
                got,
                expect,
                "remote diverged under {} at width {width}",
                kind.name()
            );
            injected += counters.injected();
        }
    }
    assert!(
        injected >= FaultKind::ALL.len() as u64,
        "sweep armed only {injected} faults — injection plane inert"
    );
}

#[test]
fn remote_conn_drop_reroutes_to_the_other_worker() {
    let workers = RemoteWorkers::spawn(2);
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::ConnDrop, 7)),
        ..Default::default()
    };
    let (got, counters) = run_remote(4, sup, &workers);
    assert_eq!(got, reference());
    assert!(counters.injected() >= 1, "conn drop never armed");
    assert!(counters.retries() >= 1, "recovery did not use a retry");
    assert!(
        counters.reroutes() >= 1,
        "the retry stayed on the dropped worker"
    );
}

#[test]
fn remote_slow_worker_is_torn_down_by_the_region_deadline() {
    let workers = RemoteWorkers::spawn(2);
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::SlowWorker, 3).stall(Duration::from_secs(30))),
        region_deadline: Some(Duration::from_millis(400)),
        ..Default::default()
    };
    let (got, counters) = run_remote(4, sup, &workers);
    assert_eq!(got, reference());
    assert!(
        counters.deadline_kills() >= 1,
        "a 30s stall under a 400ms deadline must be torn down"
    );
}

#[test]
fn dead_worker_pool_degrades_to_the_local_backend() {
    // Nobody listens on this socket: every remote attempt fails to
    // connect, and the ladder's middle rung (clean local run at full
    // width) must produce the reference bytes.
    let env_workers = vec![std::env::temp_dir().join("pash-fault-worker-nobody")];
    let sup = SupervisorSettings::default();
    let counters = sup.counters.clone();
    let mut env = RunEnv {
        fs: fresh_fs(),
        workers: env_workers,
        ..Default::default()
    };
    env.exec.supervisor = sup;
    let out = run(SCRIPT, &cfg(4), "remote", &env).expect("degraded remote run");
    let got = observe(&env, out, "remote");
    assert_eq!(got, reference());
    assert!(
        counters.local_fallbacks() >= 1,
        "the local rung never fired"
    );
}

#[test]
fn killed_worker_recovers_via_retry() {
    let (got, counters) = run_threads(4, single_shot(FaultKind::KillWorker, 4));
    assert_eq!(got, reference());
    assert!(counters.injected() >= 1, "fault never armed");
    assert!(counters.retries() >= 1, "recovery did not use a retry");
    assert_eq!(
        counters.fallbacks(),
        0,
        "single-shot fault must not need fallback"
    );
}

#[test]
fn stalled_edge_is_killed_by_the_region_deadline() {
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::Stall, 9).stall(Duration::from_secs(30))),
        region_deadline: Some(Duration::from_millis(400)),
        ..Default::default()
    };
    let (got, counters) = run_threads(4, sup);
    assert_eq!(got, reference());
    assert!(
        counters.deadline_kills() >= 1,
        "the watchdog never fired on a 30s stall under a 400ms deadline"
    );
    assert!(counters.retries() >= 1, "deadline kill should be retried");
}

#[test]
fn persistent_fault_degrades_to_the_sequential_fallback() {
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::KillWorker, 5).budget(u32::MAX)),
        max_retries: 1,
        ..Default::default()
    };
    let (got, counters) = run_threads(4, sup);
    assert_eq!(got, reference(), "fallback output must be the reference");
    assert!(
        counters.fallbacks() >= 1,
        "an every-attempt fault must exhaust retries and fall back"
    );
    assert!(counters.retries() >= 1);
}

#[test]
fn wedged_child_is_killed_by_the_proc_deadline() {
    if runtime_binaries().is_none() {
        eprintln!("skipping: multicall binaries not built");
        return;
    }
    let sup = SupervisorSettings {
        fault: Some(FaultPlan::new(FaultKind::Stall, 13).stall(Duration::from_secs(30))),
        region_deadline: Some(Duration::from_millis(600)),
        ..Default::default()
    };
    let (got, counters) = run_processes(2, sup).expect("binaries present");
    assert_eq!(got, reference());
    assert!(
        counters.deadline_kills() >= 1,
        "a wedged child must be SIGKILLed at the deadline, not waited out"
    );
}
