//! The back-end's other half: the scripts PaSh *emits* must run under
//! a real POSIX `/bin/sh` — with real FIFOs, background jobs, `wait`,
//! and SIGPIPE cleanup — and produce the sequential output.
//!
//! These tests build the `pashc` (coreutils multi-call) and `pash-rt`
//! (runtime primitives) binaries and drive the generated scripts
//! through the system shell.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use pash::core::compile::PashConfig;
use pash::coreutils::fs::MemFs;
use pash::runtime::exec::{run_script, ExecConfig};
use pash_bench::fixtures::{cached_corpus, registry, runtime_binaries};

/// A shared corpus from the process-wide cache, cloned into the
/// per-test file list.
fn corpus(seed: u64, bytes: usize) -> Vec<u8> {
    cached_corpus(seed, bytes).as_ref().clone()
}

/// The multi-call binaries, when `/bin/sh` exists to drive them.
fn build_binaries() -> Option<(PathBuf, PathBuf)> {
    if !PathBuf::from("/bin/sh").exists() {
        return None;
    }
    runtime_binaries()
}

/// Compiles `script`, materializes `files` in a temp dir, runs the
/// emitted script under `/bin/sh`, and returns the named output file.
fn run_emitted(
    script: &str,
    files: &[(&str, Vec<u8>)],
    width: usize,
    output: &str,
) -> Option<Vec<u8>> {
    let (pashc, pash_rt) = build_binaries()?;
    let cfg = PashConfig {
        width,
        ..Default::default()
    };
    let compiled = pash::compile(script, &cfg).expect("compile");
    let dir = std::env::temp_dir().join(format!("pash-e2e-{}-{width}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    for (name, data) in files {
        std::fs::write(dir.join(name), data).expect("write input");
    }
    std::fs::write(dir.join("parallel.sh"), &compiled.script).expect("write script");
    let status = Command::new("/bin/sh")
        .arg("parallel.sh")
        .current_dir(&dir)
        .env("PASHC", &pashc)
        .env("PASH_RT", &pash_rt)
        .status()
        .expect("run sh");
    assert!(
        status.success(),
        "emitted script failed:\n{}",
        compiled.script
    );
    let out = std::fs::read(dir.join(output)).expect("output file");
    let _ = std::fs::remove_dir_all(&dir);
    Some(out)
}

/// The executor's sequential output as the reference.
fn reference(script: &str, files: &[(&str, Vec<u8>)], output: &str) -> Vec<u8> {
    let fs = Arc::new(MemFs::new());
    for (name, data) in files {
        fs.add(*name, data.clone());
    }
    run_script(
        script,
        &PashConfig {
            width: 1,
            ..Default::default()
        },
        registry(),
        fs.clone(),
        Vec::new(),
        &ExecConfig::default(),
    )
    .expect("reference run");
    fs.read(output).expect("reference output")
}

#[test]
fn emitted_sort_pipeline_runs_under_sh() {
    let files = vec![("in.txt", corpus(51, 60_000))];
    let script = "cat in.txt | tr A-Z a-z | sort | uniq -c > out.txt";
    let expected = reference(script, &files, "out.txt");
    for width in [1usize, 3] {
        match run_emitted(script, &files, width, "out.txt") {
            Some(out) => assert_eq!(
                out, expected,
                "emitted script output diverged at width {width}"
            ),
            None => eprintln!("skipping: no /bin/sh or binaries unavailable"),
        }
    }
}

#[test]
fn emitted_grep_head_terminates_cleanly() {
    // The §5.2 dangling-FIFO scenario under a real shell: head exits
    // early; the emitted cleanup must SIGPIPE the producers so the
    // script terminates.
    let files = vec![("in.txt", corpus(52, 40_000))];
    let script = "cat in.txt | tr A-Z a-z | sort -rn | head -n 1 > out.txt";
    let expected = reference(script, &files, "out.txt");
    match run_emitted(script, &files, 4, "out.txt") {
        Some(out) => assert_eq!(out, expected),
        None => eprintln!("skipping: no /bin/sh or binaries unavailable"),
    }
}

#[test]
fn emitted_comm_with_static_input() {
    let dict = pash::workloads::dictionary();
    let files = vec![("in.txt", corpus(53, 30_000)), ("dict.txt", dict)];
    let script =
        "cat in.txt | tr -cs A-Za-z '\\n' | tr A-Z a-z | sort | uniq | comm -13 dict.txt - > out.txt";
    let expected = reference(script, &files, "out.txt");
    match run_emitted(script, &files, 3, "out.txt") {
        Some(out) => assert_eq!(out, expected),
        None => eprintln!("skipping: no /bin/sh or binaries unavailable"),
    }
}
